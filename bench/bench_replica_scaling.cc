// Read scaling — stale-tolerant read throughput vs. the number of
// snapshot-serving read replicas (0/1/2/4), under a write-heavy foreground
// on the primary. Replicas tail the shared DFS log (no write-path changes,
// no extra copies of the data) and serve MVCC reads at their applied
// watermark, so read capacity scales by adding compute only: the primary's
// disk/NIC queues stop being the read bottleneck while its write path is
// untouched. Not a paper figure: LogBase §6 names multi-tier replication as
// future work; this measures the disaggregated-read design point.

#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"

using namespace logbase;
using namespace logbase::bench;

namespace {

constexpr const char* kTable = "reads";
// Nodes 0-4 host the DFS/servers/replicas; nodes 5-11 host only clients, so
// a serving NIC's capacity goes to serving (colocating clients with
// replicas makes every NIC both a client and a server bottleneck and
// flattens the scaling curve).
constexpr int kNodes = 12;
constexpr int kFirstClientNode = 5;
constexpr int kClientNodes = 7;
// Enough closed-loop readers to saturate a single serving NIC at R=0 —
// scaling only shows once the baseline is capacity-bound, not latency-bound.
constexpr int kReadClients = 32;
constexpr int kWriteClients = 2;

std::string KeyAt(uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "user%08llu",
                static_cast<unsigned long long>(index));
  return buf;
}

struct ConfigResult {
  int replicas = 0;
  double read_throughput = 0;
  double read_p50_us = 0;
  double read_p99_us = 0;
  double write_p99_us = 0;
  uint64_t replica_served = 0;
  uint64_t primary_fallbacks = 0;
  uint64_t read_failed = 0;
};

ConfigResult RunConfig(int num_replicas, uint64_t records,
                       uint64_t ops_per_client, const std::string& value) {
  cluster::MiniClusterOptions options;
  options.num_nodes = kNodes;
  options.num_replicas = num_replicas;
  // Large segments: a segment rotation mid-measurement makes every tailer's
  // next pread seek to the fresh locus (~12ms positioning), and that pread's
  // delivery parks the replica's ingress NIC that far in the future, so the
  // p99 of every config measures rotation artifacts instead of scaling.
  options.server_template.segment_bytes = 256 << 20;
  // Same cache budget on primaries and replicas: the scaling measured here
  // is compute/NIC disaggregation, not cache-capacity asymmetry.
  options.server_template.read_buffer_bytes = 32ull << 20;
  cluster::MiniCluster cluster(options);
  if (!cluster.Start().ok()) std::abort();
  if (!cluster.master()->CreateTable(kTable, {"v"}, {{"v"}}, {}).ok()) {
    std::abort();
  }

  std::vector<std::unique_ptr<client::LogBaseClient>> readers;
  std::vector<std::unique_ptr<client::LogBaseClient>> writers;
  for (int i = 0; i < kReadClients; i++) {
    readers.push_back(
        cluster.NewClient(kFirstClientNode + i % kClientNodes));
  }
  for (int i = 0; i < kWriteClients; i++) {
    writers.push_back(
        cluster.NewClient(kFirstClientNode + i % kClientNodes));
  }

  // Load, then attach every tablet to every replica and let them catch up.
  {
    sim::SimContext load_ctx;
    sim::SimContext::Scope scope(&load_ctx);
    for (uint64_t i = 0; i < records; i++) {
      if (!writers[i % kWriteClients]->Put(kTable, 0, KeyAt(i), value, {}).ok()) {
        std::abort();
      }
    }
  }
  for (const auto& [uid, location] :
       cluster.master()->AssignmentsSnapshot()) {
    for (int i = 0; i < num_replicas; i++) {
      if (!cluster.master()->AddReplica(uid).ok()) std::abort();
    }
  }
  {
    sim::SimContext seed_ctx;
    sim::SimContext::Scope scope(&seed_ctx);
    if (!cluster.TickReplicas().ok()) std::abort();
  }
  for (auto& c : readers) c->InvalidateCache();

  ResetCosts(cluster.dfs(), cluster.network());
  cluster.ResetMetrics();

  // Closed loop: writers hammer the primary while readers issue
  // stale-tolerant point reads; a tailer actor re-syncs the replicas each
  // round (its DFS reads contend with everything else, as they would).
  ConfigResult result;
  result.replicas = num_replicas;
  Histogram read_latency, write_latency;
  std::vector<sim::SimContext> read_ctxs(kReadClients);
  std::vector<sim::SimContext> write_ctxs(kWriteClients);
  std::vector<sim::SimContext> tailer_ctxs(num_replicas);
  std::vector<Random> rngs;
  for (int i = 0; i < kReadClients + kWriteClients; i++) {
    rngs.emplace_back(0x5CA1E + i);
  }

  client::ReadOptions stale;
  stale.allow_stale = true;
  uint64_t reads = 0;
  for (uint64_t round = 0; round < ops_per_client; round++) {
    // Synchronized closed loop: each round starts with every actor's clock
    // at the fleet's frontier. The shared resources are FCFS in *call*
    // order, so an actor whose clock runs ahead of the fleet reserves
    // resource time in the future and everyone at the present queues behind
    // it; any alignment short of a full barrier lets the leading half of
    // the fleet cut the line, and per-op latency equilibrates at a full
    // round for everybody regardless of server count. With the barrier,
    // call order equals time order and latency measures real queueing.
    sim::VirtualTime frontier = 0;
    for (const sim::SimContext& ctx : read_ctxs) {
      frontier = std::max(frontier, ctx.now());
    }
    for (const sim::SimContext& ctx : write_ctxs) {
      frontier = std::max(frontier, ctx.now());
    }
    for (sim::SimContext& ctx : read_ctxs) ctx.AdvanceTo(frontier);
    for (sim::SimContext& ctx : write_ctxs) ctx.AdvanceTo(frontier);
    for (int w = 0; w < kWriteClients; w++) {
      sim::SimContext::Scope scope(&write_ctxs[w]);
      Random* rnd = &rngs[kReadClients + w];
      sim::VirtualTime start = write_ctxs[w].now();
      if (writers[w]->Put(kTable, 0, KeyAt(rnd->Uniform(records)), value, {})
              .ok()) {
        write_latency.Add(static_cast<double>(write_ctxs[w].now() - start));
      }
    }
    for (int r = 0; r < kReadClients; r++) {
      sim::SimContext::Scope scope(&read_ctxs[r]);
      Random* rnd = &rngs[r];
      sim::VirtualTime start = read_ctxs[r].now();
      auto got =
          readers[r]->Get(kTable, 0, KeyAt(rnd->Uniform(records)), stale);
      reads++;
      if (got.ok()) {
        read_latency.Add(static_cast<double>(read_ctxs[r].now() - start));
      } else {
        result.read_failed++;
      }
    }
    for (int i = 0; i < num_replicas; i++) {
      // Each replica is its own actor polling the log every round. Frequent
      // tiny polls (one round's appends, ~16KB) beat rare big catch-ups: a
      // lumped 100KB+ pread seeks the disk, then parks the replica's
      // ingress NIC milliseconds into the future, and every read request
      // behind it stalls. The NICs are full duplex, so poll ingress never
      // contends with response egress — only the poll's own wire time
      // matters, and at one round of log per poll that is ~0.1ms. Aggregate
      // tail-read bytes still scale with replica count — every replica must
      // see every log record, the cost of this design. The poller starts
      // each poll at the same frontier the clients started the round from,
      // so its I/O charges land in the present, not the future.
      tailer_ctxs[i].AdvanceTo(frontier);
      sim::SimContext::Scope scope(&tailer_ctxs[i]);
      if (!cluster.replica(i)->TickTailers().ok()) std::abort();
    }
  }

  double read_seconds = 0;
  for (const sim::SimContext& ctx : read_ctxs) {
    read_seconds = std::max(read_seconds, ctx.now() / 1e6);
  }
  result.read_throughput =
      read_seconds > 0 ? static_cast<double>(reads) / read_seconds : 0;
  result.read_p50_us = read_latency.Percentile(50);
  result.read_p99_us = read_latency.Percentile(99);
  result.write_p99_us = write_latency.Percentile(99);
  obs::MetricsSnapshot m = cluster.DumpMetrics();
  result.replica_served = m.CounterValue("replica.read.served");
  result.primary_fallbacks = m.CounterValue("client.replica.fallbacks");
  if (std::getenv("LOGBASE_BENCH_BREAKDOWN") != nullptr) {
    PrintComponentBreakdown(m, "this config");
    sim::NetworkModel* net = cluster.network();
    for (int i = 0; i < net->num_nodes(); i++) {
      std::printf("  node %2d  tx=%8llu us  rx=%8llu us", i,
                  static_cast<unsigned long long>(
                      net->nic_tx(i)->total_busy_us()),
                  static_cast<unsigned long long>(
                      net->nic_rx(i)->total_busy_us()));
      if (i < cluster.dfs()->num_nodes()) {
        std::printf("  disk=%8llu us",
                    static_cast<unsigned long long>(cluster.dfs()
                                                        ->data_node(i)
                                                        ->disk()
                                                        ->resource()
                                                        ->total_busy_us()));
      }
      std::printf("\n");
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  PrintHeader("Read scaling",
              "Stale-tolerant read throughput vs. read replicas "
              "(5 servers, write-heavy foreground)");
  const uint64_t records = Scaled(20000);
  const uint64_t ops_per_client = Scaled(2000);
  std::printf("records: %llu x 8KB, %d read + %d write clients, "
              "%llu rounds, uniform keys, reads allow_stale\n",
              static_cast<unsigned long long>(records), kReadClients,
              kWriteClients, static_cast<unsigned long long>(ops_per_client));

  // 8KB values: the response wire time (~70us on 1 GbE) dominates the
  // per-RPC software overhead, so the serving node's NIC bandwidth — the
  // resource replicas multiply — is what saturates first.
  const std::string value(8192, 'v');
  BenchResult result("replica_scaling");
  result.Set("records", static_cast<double>(records));
  result.Set("read_clients", kReadClients);
  result.Set("write_clients", kWriteClients);

  std::vector<ConfigResult> configs;
  for (int num_replicas : {0, 1, 2, 4}) {
    ConfigResult r = RunConfig(num_replicas, records, ops_per_client, value);
    configs.push_back(r);
    std::printf("replicas=%d  reads %9.0f ops/s  p50=%7.0fus  p99=%7.0fus  "
                "write_p99=%7.0fus  served=%llu fallbacks=%llu failed=%llu\n",
                r.replicas, r.read_throughput, r.read_p50_us, r.read_p99_us,
                r.write_p99_us,
                static_cast<unsigned long long>(r.replica_served),
                static_cast<unsigned long long>(r.primary_fallbacks),
                static_cast<unsigned long long>(r.read_failed));
    char label[16];
    std::snprintf(label, sizeof(label), "r%d", r.replicas);
    result.AddRow(
        "configs", label,
        {{"replicas", static_cast<double>(r.replicas)},
         {"read_throughput_ops", r.read_throughput},
         {"read_p50_us", r.read_p50_us},
         {"read_p99_us", r.read_p99_us},
         {"write_p99_us", r.write_p99_us},
         {"replica_served", static_cast<double>(r.replica_served)},
         {"primary_fallbacks", static_cast<double>(r.primary_fallbacks)}});
  }

  const ConfigResult& base = configs.front();
  const ConfigResult& four = configs.back();
  double scaling = base.read_throughput > 0
                       ? four.read_throughput / base.read_throughput
                       : 0;
  double write_p99_ratio =
      base.write_p99_us > 0 ? four.write_p99_us / base.write_p99_us : 0;
  std::printf("read scaling 4 replicas vs 0: %.2fx (target >= 2x); "
              "primary write p99 ratio: %.2fx\n",
              scaling, write_p99_ratio);
  result.Set("scaling_4v0", scaling);
  result.Set("write_p99_ratio_4v0", write_p99_ratio);
  result.WriteFile();

  PrintPaperClaim(
      "The log is the database: because every mutation is durable in the "
      "shared DFS log, read capacity scales by adding stateless compute "
      "that tails the log and serves bounded-staleness snapshots — no "
      "second copy of the data, no write-path changes (cf. LogBase §6 "
      "multi-tier replication as future work).");
  return 0;
}
