// Figure 7 — Random access WITHOUT cache: time to read 0.5K/1K/2K/4K random
// tuples out of a loaded table, LogBase vs HBase, caches disabled.
//
// Mechanism under test: LogBase's dense in-memory index locates any record
// with ONE disk seek; HBase must probe its store files (block-index seek +
// 64KB block read per file) until the row is found — the long-tail read
// path of §3.5/§4.2.2.

#include <algorithm>

#include "bench/common.h"

using namespace logbase;
using namespace logbase::bench;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  PrintHeader("Figure 7",
              "Random read time (s) without cache, LogBase vs HBase");
  const uint64_t load_n = Scaled(1000000);
  workload::YcsbOptions wopts;
  wopts.record_count = load_n;
  wopts.value_bytes = 1024;
  workload::YcsbWorkload workload(wopts);

  MicroLogBase logbase_fixture(/*read_buffer_bytes=*/0);
  core::TabletServerEngine logbase_engine(logbase_fixture.server.get(),
                                          "LogBase");
  SequentialLoad(&logbase_engine, logbase_fixture.uid, workload, load_n,
                 logbase_fixture.dfs.get());

  MicroHBase hbase_fixture(/*block_cache_bytes=*/0);
  core::HBaseEngine hbase_engine(hbase_fixture.server.get());
  SequentialLoad(&hbase_engine, hbase_fixture.uid, workload, load_n,
                 hbase_fixture.dfs.get());
  if (!hbase_fixture.server->FlushAll().ok()) return 1;

  auto run_reads = [&](core::KvEngine* engine, const std::string& uid,
                       uint64_t reads, uint64_t seed, dfs::Dfs* dfs) {
    ResetCosts(dfs);
    Random rnd(seed);
    return TimedRun([&] {
      for (uint64_t i = 0; i < reads; i++) {
        std::string key = workload.KeyAt(rnd.Uniform(load_n));
        auto value = engine->Get(uid, Slice(key));
        if (!value.ok()) std::abort();
      }
    });
  };

  std::printf("%8s %12s %10s %8s\n", "reads", "LogBase(s)", "HBase(s)",
              "ratio");
  for (uint64_t reads : {500ull, 1000ull, 2000ull, 4000ull}) {
    double logbase_s =
        run_reads(&logbase_engine, logbase_fixture.uid, reads, reads,
                  logbase_fixture.dfs.get());
    double hbase_s =
        run_reads(&hbase_engine, hbase_fixture.uid, reads, reads,
                  hbase_fixture.dfs.get());
    std::printf("%8llu %12.2f %10.2f %8.2fx\n",
                static_cast<unsigned long long>(reads), logbase_s, hbase_s,
                hbase_s / logbase_s);
  }
  PrintComponentBreakdown();
  PrintPaperClaim(
      "LogBase is superior without cache: its dense in-memory index seeks "
      "directly to the record (one disk seek); HBase loads and scans a 64KB "
      "block per candidate store file (long tail requests, Fig. 7).");
  return 0;
}
