// Figure 8 — Random access WITH cache: 300..2K zipfian reads with LogBase's
// read buffer and HBase's block cache enabled (the paper's 20%-of-heap
// setting). The gap narrows because cached blocks spare HBase the block
// fetch.

#include "bench/common.h"

using namespace logbase;
using namespace logbase::bench;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  PrintHeader("Figure 8",
              "Random read time (s) with cache, LogBase vs HBase");
  const uint64_t load_n = Scaled(1000000);
  workload::YcsbOptions wopts;
  wopts.record_count = load_n;
  wopts.value_bytes = 1024;
  workload::YcsbWorkload workload(wopts);

  const size_t kCacheBytes = 64ull << 20;  // ~20% of a 4GB-heap-equivalent,
                                           // scaled with the data
  MicroLogBase logbase_fixture(/*read_buffer_bytes=*/kCacheBytes);
  core::TabletServerEngine logbase_engine(logbase_fixture.server.get(),
                                          "LogBase");
  SequentialLoad(&logbase_engine, logbase_fixture.uid, workload, load_n,
                 logbase_fixture.dfs.get());

  MicroHBase hbase_fixture(/*block_cache_bytes=*/kCacheBytes);
  core::HBaseEngine hbase_engine(hbase_fixture.server.get());
  SequentialLoad(&hbase_engine, hbase_fixture.uid, workload, load_n,
                 hbase_fixture.dfs.get());
  if (!hbase_fixture.server->FlushAll().ok()) return 1;

  // Warm both caches like the paper warms before each experiment.
  workload::YcsbOptions read_opts = wopts;
  read_opts.update_proportion = 0.0;
  workload::YcsbWorkload reader(read_opts);
  Random warm_rnd(99);
  for (int i = 0; i < 2000; i++) {
    auto op = reader.NextOp(&warm_rnd);
    (void)logbase_engine.Get(logbase_fixture.uid, Slice(op.key));
    (void)hbase_engine.Get(hbase_fixture.uid, Slice(op.key));
  }

  auto run_reads = [&](core::KvEngine* engine, const std::string& uid,
                       uint64_t reads, uint64_t seed, dfs::Dfs* dfs) {
    ResetCosts(dfs);
    workload::YcsbWorkload zipf(read_opts, seed);
    Random rnd(seed);
    return TimedRun([&] {
      for (uint64_t i = 0; i < reads; i++) {
        auto op = zipf.NextOp(&rnd);
        auto value = engine->Get(uid, Slice(op.key));
        if (!value.ok()) std::abort();
      }
    });
  };

  std::printf("%8s %12s %10s %8s\n", "reads", "LogBase(s)", "HBase(s)",
              "ratio");
  for (uint64_t reads : {300ull, 600ull, 1000ull, 1500ull, 2000ull}) {
    double logbase_s =
        run_reads(&logbase_engine, logbase_fixture.uid, reads, reads,
                  logbase_fixture.dfs.get());
    double hbase_s =
        run_reads(&hbase_engine, hbase_fixture.uid, reads, reads,
                  hbase_fixture.dfs.get());
    std::printf("%8llu %12.3f %10.3f %8.2fx\n",
                static_cast<unsigned long long>(reads), logbase_s, hbase_s,
                hbase_s / logbase_s);
  }
  PrintComponentBreakdown();
  PrintPaperClaim(
      "the performance gap reduces when the block cache is adopted: cached "
      "blocks spare HBase the seek+block read; LogBase still leads via the "
      "in-memory index (Fig. 8).");
  return 0;
}
