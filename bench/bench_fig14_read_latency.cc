// Figure 14 — Read latency (ms) for the Figure 12 runs: LogBase's in-memory
// index gives lower read latency; flat as nodes scale.

#include "bench/common.h"
#include "bench/mixed_common.h"

using namespace logbase;
using namespace logbase::bench;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  PrintHeader("Figure 14",
              "Read latency (ms, avg), LogBase vs HBase, 95%/75% update");
  const uint64_t kOpsPerClient = 2000;
  std::printf("%6s %6s %14s %12s\n", "nodes", "mix", "LogBase(ms)",
              "HBase(ms)");
  for (int nodes : {3, 6, 12, 24}) {
    for (double update : {0.95, 0.75}) {
      auto logbase =
          RunMixedExperiment(EngineKind::kLogBase, nodes, update,
                             kOpsPerClient);
      auto hbase = RunMixedExperiment(EngineKind::kHBase, nodes, update,
                                      kOpsPerClient);
      std::printf("%6d %5.0f%% %14.3f %12.3f\n", nodes, update * 100,
                  logbase.run.read_latency_us.Average() / 1000.0,
                  hbase.run.read_latency_us.Average() / 1000.0);
    }
  }
  PrintComponentBreakdown();
  PrintPaperClaim(
      "LogBase provides better read latency thanks to the dense in-memory "
      "index (one seek per miss); the block cache helps HBase less at "
      "cluster scale because the data/domain are large (Fig. 14); latency "
      "is flat as the system scales.");
  return 0;
}
