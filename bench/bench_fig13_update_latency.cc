// Figure 13 — Update latency (ms) for the Figure 12 runs: roughly flat as
// the system scales (elastic scaling), LogBase below HBase.

#include "bench/common.h"
#include "bench/mixed_common.h"

using namespace logbase;
using namespace logbase::bench;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  PrintHeader("Figure 13",
              "Update latency (ms, avg), LogBase vs HBase, 95%/75% update");
  const uint64_t kOpsPerClient = 2000;
  std::printf("%6s %6s %14s %12s\n", "nodes", "mix", "LogBase(ms)",
              "HBase(ms)");
  for (int nodes : {3, 6, 12, 24}) {
    for (double update : {0.95, 0.75}) {
      auto logbase =
          RunMixedExperiment(EngineKind::kLogBase, nodes, update,
                             kOpsPerClient);
      auto hbase = RunMixedExperiment(EngineKind::kHBase, nodes, update,
                                      kOpsPerClient);
      std::printf("%6d %5.0f%% %14.3f %12.3f\n", nodes, update * 100,
                  logbase.run.update_latency_us.Average() / 1000.0,
                  hbase.run.update_latency_us.Average() / 1000.0);
    }
  }
  PrintComponentBreakdown();
  PrintPaperClaim(
      "update latency stays flat as nodes are added (elastic scaling); "
      "HBase pays more because a write can stall behind a memtable flush "
      "while LogBase only appends to the log (Fig. 13).");
  return 0;
}
