// Multi-tenant QoS — a hostile zipfian writer beside a well-behaved tenant
// on a shared 3-server cluster, before/after a token-bucket quota is
// installed for the hostile tenant. Unthrottled, the hostile tenant floods
// the shared FCFS disk/NIC queues and the victim's tail latency explodes;
// with the quota, admission control sheds the excess at the front door with
// a retry-after hint the client's backoff honors, pacing the hostile tenant
// to its configured rate while the victim's p99 recovers. Not a paper
// figure: LogBase targets multi-tenant cloud deployments (§1), this
// measures the isolation machinery (src/qos/).

#include <algorithm>
#include <memory>
#include <vector>

#include "bench/common.h"
#include "src/qos/quota_registry.h"

using namespace logbase;
using namespace logbase::bench;

namespace {

constexpr const char* kTable = "mt";
constexpr int kNodes = 3;
constexpr double kHostileRate = 100.0;  // ops/sec quota for phase B
// Half a second of banked quota: enough to ride out the write path's own
// stalls (segment rolls, pipelined sync waits) without wasting paid-for
// tokens against the burst cap, small relative to the measured phase.
constexpr double kHostileBurst = 50.0;
// The hostile tenant is 8 concurrent connections, each an open-loop op
// source. One serial connection is bound by its own round-trip latency
// (~1/RTT ops/s) and can never saturate the shared disk; a real bulk
// loader floods with parallelism, and all its connections draw from the
// same tenant token bucket when the quota lands.
constexpr int kHostileStreams = 8;
constexpr int kHostileOpsPerRound = 16;  // total across streams, per round
static_assert(kHostileOpsPerRound % kHostileStreams == 0, "even split");
// Bulk writes: 32 KB values, so the unthrottled flood saturates the shared
// disk's bandwidth and group-commit pipeline, not just its op slots.
constexpr size_t kHostileValueBytes = 32 * 1024;
// Open-loop pacing: every round starts at a fixed virtual time on each
// tenant's clock, so the victim offers 1/period ops/s and the hostile
// tenant kHostileOpsPerRound/period — 16x the quota installed for phase B.
constexpr sim::VirtualTime kRoundPeriodUs = 10'000;

std::string KeyAt(uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "user%08llu",
                static_cast<unsigned long long>(index));
  return buf;
}

struct TenantPhase {
  uint64_t ops = 0;
  uint64_t failed = 0;
  double seconds = 0;
  double throughput = 0;  // acked ops per virtual second
  Histogram latency_us;
};

/// One concurrent hostile connection: an open-loop op source on its own
/// virtual clock, with at most one op in flight (possibly mid-pacing after
/// a shed, waiting out its retry-after hint).
struct HostileStream {
  sim::SimContext ctx;
  uint64_t issued = 0;  // completed (acked, failed, or given-up) ops
  bool pending = false;
  std::string pending_key;
  sim::VirtualTime pending_start = 0;
  int pending_attempts = 0;
};

/// One open-loop pass, driven in virtual-time order. Every op source — the
/// victim, and each of the hostile tenant's kHostileStreams connections —
/// is a stream on its own clock with fixed grid start times (the victim
/// offers one uniform update per kRoundPeriodUs, each hostile connection
/// its share of kHostileOpsPerRound zipfian updates per round), and the
/// driver always issues the single attempt whose scheduled start
/// (max(stream clock, grid time)) is earliest: the discrete-event rule that
/// keeps every server's arrival order consistent with the streams'
/// diverging clocks. The hostile client is fail-fast (one attempt) and the
/// DRIVER honors a shed's retry-after hint — it advances only that
/// stream's clock by the hint and re-attempts the same op at its new slot,
/// so ops scheduled during the pacing sleep interleave in front of the
/// retry exactly as concurrent clients would. A stream that ran long
/// misses grid points and degrades to closed-loop — what the throttled
/// hostile connections do in phase B — while the victim's offered load
/// stays constant across phases so its latency numbers are comparable.
void RunPhase(client::LogBaseClient* victim, client::LogBaseClient* hostile,
              ZipfianGenerator* zipf, Random* victim_rnd, Random* hostile_rnd,
              uint64_t rounds, uint64_t records,
              const std::string& victim_value,
              const std::string& hostile_value, TenantPhase* victim_out,
              TenantPhase* hostile_out) {
  sim::SimContext victim_ctx;
  std::vector<HostileStream> streams(kHostileStreams);
  constexpr uint64_t kPerStreamPerRound = kHostileOpsPerRound / kHostileStreams;
  const uint64_t per_stream_ops = rounds * kPerStreamPerRound;
  // Paced re-attempts before giving up. Streams race for the same tenant
  // bucket, so one connection can lose many consecutive token grants to
  // its siblings before its turn comes around.
  constexpr int kMaxAttempts = 256;
  uint64_t victim_issued = 0;
  uint64_t hostile_done = 0;
  const uint64_t hostile_total = per_stream_ops * kHostileStreams;
  while (victim_issued < rounds || hostile_done < hostile_total) {
    const sim::VirtualTime victim_next = std::max(
        victim_ctx.now(),
        static_cast<sim::VirtualTime>(victim_issued) * kRoundPeriodUs);
    int pick = -1;  // earliest-scheduled hostile stream, if any remain
    sim::VirtualTime pick_next = 0;
    for (int i = 0; i < kHostileStreams; i++) {
      if (streams[i].issued >= per_stream_ops) continue;
      const sim::VirtualTime next = std::max(
          streams[i].ctx.now(),
          static_cast<sim::VirtualTime>(streams[i].issued / kPerStreamPerRound)
              * kRoundPeriodUs);
      if (pick < 0 || next < pick_next) {
        pick = i;
        pick_next = next;
      }
    }
    if (pick < 0 || (victim_issued < rounds && victim_next <= pick_next)) {
      sim::SimContext::Scope scope(&victim_ctx);
      victim_ctx.AdvanceTo(victim_next);
      std::string key = KeyAt(victim_rnd->Uniform(records));
      sim::VirtualTime start = victim_ctx.now();
      Status s = victim->Put(kTable, 0, key, victim_value, {});
      victim_out->ops++;
      if (s.ok()) {
        victim_out->latency_us.Add(
            static_cast<double>(victim_ctx.now() - start));
      } else {
        victim_out->failed++;
      }
      victim_issued++;
    } else {
      HostileStream& st = streams[pick];
      sim::SimContext::Scope scope(&st.ctx);
      st.ctx.AdvanceTo(pick_next);
      if (!st.pending) {
        st.pending_key = KeyAt(zipf->Next(hostile_rnd));
        st.pending_start = st.ctx.now();
        st.pending_attempts = 0;
        st.pending = true;
      }
      Status s = hostile->Put(kTable, 0, st.pending_key, hostile_value, {});
      st.pending_attempts++;
      if (!s.ok() && s.retry_after_us() > 0 &&
          st.pending_attempts < kMaxAttempts) {
        st.ctx.Advance(s.retry_after_us());  // pace, re-attempt later
        continue;
      }
      hostile_out->ops++;
      if (s.ok()) {
        hostile_out->latency_us.Add(
            static_cast<double>(st.ctx.now() - st.pending_start));
      } else {
        hostile_out->failed++;
      }
      st.pending = false;
      st.issued++;
      hostile_done++;
    }
  }
  victim_out->seconds = victim_ctx.now() / 1e6;
  sim::VirtualTime hostile_end = 0;
  for (const HostileStream& st : streams) {
    hostile_end = std::max(hostile_end, st.ctx.now());
  }
  hostile_out->seconds = hostile_end / 1e6;
  if (victim_out->seconds > 0) {
    victim_out->throughput =
        static_cast<double>(victim_out->ops - victim_out->failed) /
        victim_out->seconds;
  }
  if (hostile_out->seconds > 0) {
    hostile_out->throughput =
        static_cast<double>(hostile_out->ops - hostile_out->failed) /
        hostile_out->seconds;
  }
}

void PrintTenant(const char* label, const TenantPhase& t) {
  std::printf("%-28s %9.0f ops/s  p50=%8.0fus  p99=%8.0fus  acked=%llu/%llu\n",
              label, t.throughput, t.latency_us.Percentile(50),
              t.latency_us.Percentile(99),
              static_cast<unsigned long long>(t.ops - t.failed),
              static_cast<unsigned long long>(t.ops));
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  PrintHeader("QoS", "Noisy neighbor, before/after a token-bucket quota "
                     "(3 servers, 2 tenants)");
  const uint64_t records = Scaled(10000);
  const uint64_t rounds = Scaled(4000);
  std::printf("records: %llu, rounds: %llu x %lldus (victim 1 update + "
              "hostile %d zipfian updates per round over %d connections), "
              "hostile quota %g ops/s burst %g\n",
              static_cast<unsigned long long>(records),
              static_cast<unsigned long long>(rounds),
              static_cast<long long>(kRoundPeriodUs), kHostileOpsPerRound,
              kHostileStreams, kHostileRate, kHostileBurst);

  cluster::MiniClusterOptions options;
  options.num_nodes = kNodes;
  options.server_template.admission.enabled = true;
  // Quotas must become visible promptly once installed mid-run.
  options.server_template.quota_registry.refresh_interval_us = 20'000;
  cluster::MiniCluster cluster(options);
  if (!cluster.Start().ok()) std::abort();
  // One tablet: both tenants share a single server front door, so the
  // installed quota binds exactly (per-server buckets would otherwise let
  // a spread-out tenant draw tokens from every server it touches).
  if (!cluster.master()->CreateTable(kTable, {"v"}, {{"v"}}, {}).ok()) {
    std::abort();
  }

  auto victim = cluster.NewClient(0);
  victim->set_tenant({"victim", qos::Priority::kNormal});
  auto hostile = cluster.NewClient(1);
  hostile->set_tenant({"hostile", qos::Priority::kLow});
  {
    // Fail fast: the bench driver itself paces shed ops by their
    // retry-after hints (see RunPhase), so other tenants' ops interleave
    // during the pacing sleeps the way concurrent clients would.
    fault::RetryOptions hostile_retry;
    hostile_retry.max_attempts = 1;
    hostile->set_retry_options(hostile_retry);
  }
  const std::string value(1024, 'v');
  const std::string hostile_value(kHostileValueBytes, 'h');

  // Load all records (uniform, as the victim tenant's setup job).
  {
    sim::SimContext load_ctx;
    sim::SimContext::Scope scope(&load_ctx);
    for (uint64_t i = 0; i < records; i++) {
      if (!victim->Put(kTable, 0, KeyAt(i), value, {}).ok()) std::abort();
    }
  }

  ZipfianGenerator zipf(records, 0.99);
  Random victim_rnd(0x51C7), hostile_rnd(0xB1A5);

  // -- Phase A: no quota — the hostile tenant floods the shared queues ----
  ResetCosts(cluster.dfs(), cluster.network());
  TenantPhase victim_before, hostile_before;
  RunPhase(victim.get(), hostile.get(), &zipf, &victim_rnd, &hostile_rnd,
           rounds, records, value, hostile_value, &victim_before,
           &hostile_before);

  // -- Install the quota through the master (persisted, resolved by every
  //    server's registry within one refresh interval) --------------------
  {
    qos::QuotaSpec quota;
    quota.tenant = "hostile";
    quota.limits.ops_per_sec = kHostileRate;
    quota.limits.ops_burst = kHostileBurst;
    if (cluster.active_master() == nullptr ||
        !cluster.active_master()->SetQuota(quota).ok()) {
      std::abort();
    }
  }

  // -- Phase B: same load, hostile tenant throttled to its quota ----------
  ResetCosts(cluster.dfs(), cluster.network());
  cluster.ResetMetrics();
  TenantPhase victim_after, hostile_after;
  RunPhase(victim.get(), hostile.get(), &zipf, &victim_rnd, &hostile_rnd,
           rounds, records, value, hostile_value, &victim_after,
           &hostile_after);

  PrintTenant("victim, no quota:", victim_before);
  PrintTenant("hostile, no quota:", hostile_before);
  PrintTenant("victim, quota on:", victim_after);
  PrintTenant("hostile, quota on:", hostile_after);

  const double p99_before = victim_before.latency_us.Percentile(99);
  const double p99_after = victim_after.latency_us.Percentile(99);
  const double p99_gain = p99_after > 0 ? p99_before / p99_after : 0;
  const double rate_error =
      (hostile_after.throughput - kHostileRate) / kHostileRate;
  std::printf("victim p99 %.0fus -> %.0fus (%.2fx better); hostile "
              "%.0f -> %.0f ops/s (target %g, error %+.1f%%)\n",
              p99_before, p99_after, p99_gain, hostile_before.throughput,
              hostile_after.throughput, kHostileRate, 100 * rate_error);
  std::printf("check: victim p99 improvement >= 3x: %s\n",
              p99_gain >= 3.0 ? "PASS" : "FAIL");
  std::printf("check: hostile rate within 10%% of quota: %s\n",
              std::abs(rate_error) <= 0.10 ? "PASS" : "FAIL");
  PrintComponentBreakdown(cluster.DumpMetrics(), "quota-on phase");

  BenchResult result("qos_noisy_neighbor");
  result.Set("records", static_cast<double>(records));
  result.Set("hostile_quota_ops", kHostileRate);
  auto add = [&result](const char* label, const TenantPhase& t) {
    result.AddRow("phases", label,
                  {{"throughput_ops", t.throughput},
                   {"p50_us", t.latency_us.Percentile(50)},
                   {"p99_us", t.latency_us.Percentile(99)},
                   {"failed", static_cast<double>(t.failed)}});
  };
  add("victim_before", victim_before);
  add("hostile_before", hostile_before);
  add("victim_after", victim_after);
  add("hostile_after", hostile_after);
  result.Set("victim_p99_gain", p99_gain);
  result.Set("hostile_rate_error", rate_error);
  result.WriteFile();
  PrintPaperClaim(
      "LogBase is built as shared cloud infrastructure (§1): per-tenant "
      "token-bucket quotas enforced at the tablet servers' front doors keep "
      "one tenant's burst from inflating every tenant's tail latency, while "
      "retry-after hints pace the throttled tenant to its configured rate "
      "instead of wasting its requests.");
  return 0;
}
