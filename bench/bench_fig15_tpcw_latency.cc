// Figure 15 — TPC-W transaction latency (ms) at 3/6/12/24 nodes for the
// browsing (5% update), shopping (20%) and ordering (50%) mixes.

#include "bench/tpcw_common.h"

using namespace logbase;
using namespace logbase::bench;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  PrintHeader("Figure 15", "TPC-W transaction latency (ms) per mix");
  const uint64_t kTxnsPerClient = 1000;
  std::printf("%6s %12s %12s %12s\n", "nodes", "browsing", "shopping",
              "ordering");
  for (int nodes : {3, 6, 12, 24}) {
    double ms[3];
    int i = 0;
    for (auto mix : {workload::TpcwMix::kBrowsing,
                     workload::TpcwMix::kShopping,
                     workload::TpcwMix::kOrdering}) {
      ms[i++] = RunTpcw(nodes, mix, kTxnsPerClient).latency_ms;
    }
    std::printf("%6d %12.3f %12.3f %12.3f\n", nodes, ms[0], ms[1], ms[2]);
  }
  PrintComponentBreakdown();
  PrintPaperClaim(
      "under browsing and shopping mixes LogBase scales with nearly flat "
      "transaction latency — most transactions are read-only and commit "
      "without conflict checks under MVOCC; the ordering mix pays more for "
      "write locks + commit-record persistence (Fig. 15).");
  return 0;
}
