// Write path — group commit, pipelined quorum appends.
//
// Mechanism under test: concurrent writers enqueue records into the tablet
// server's append queue; a group-commit dispatcher coalesces them into
// multi-record batches that share one log append + one replicated DFS sync.
// Replication acks at a quorum of log replicas (the straggler completes in
// the background), so one disk-stalled data node no longer sits on every
// commit's critical path.
//
// Phase 1: throughput of N concurrent writers with the batch window off
// (every record its own batch) vs on (batches coalesce to ~N records).
// Phase 2: p99 commit latency with one disk-stalled replica, quorum ack vs
// full ack.

#include <deque>

#include "bench/common.h"
#include "src/util/histogram.h"

using namespace logbase;
using namespace logbase::bench;

namespace {

constexpr uint64_t kValueBytes = 1024;

struct WriteFixture {
  std::unique_ptr<dfs::Dfs> dfs;
  coord::CoordinationService coord;
  std::unique_ptr<tablet::TabletServer> server;
  std::string uid;

  explicit WriteFixture(sim::VirtualTime window_us) {
    dfs::DfsOptions dfs_options;
    dfs_options.num_nodes = 3;
    dfs = std::make_unique<dfs::Dfs>(dfs_options);
    tablet::TabletServerOptions options;
    options.server_id = 0;
    options.group_commit.window_us = window_us;
    server = std::make_unique<tablet::TabletServer>(options, dfs.get(),
                                                    &coord);
    if (!server->Start().ok()) std::abort();
    tablet::TabletDescriptor d;
    d.table_id = 1;
    d.table_name = "bench";
    uid = d.uid();
    if (!server->OpenTablet(d).ok()) std::abort();
  }
};

struct RunResult {
  double seconds = 0;      // virtual time for the whole run
  double p50_us = 0;       // per-op commit latency
  double p99_us = 0;
  double batch_avg = 0;    // records per flushed log batch
};

/// `writers` concurrent clients, each with one write outstanding: submit op
/// k, then complete op k-writers+1 (round robin). The append queue sees
/// `writers` submissions between leader flushes, so steady-state batches
/// coalesce to about `writers` records.
RunResult RunWriters(WriteFixture* f, int writers, uint64_t n,
                     log::AckMode ack) {
  ResetCosts(f->dfs.get());
  auto before = obs::MetricsRegistry::Global().Snapshot();
  workload::YcsbOptions wopts;
  wopts.record_count = n;
  wopts.value_bytes = kValueBytes;
  workload::YcsbWorkload workload(wopts);
  Random rnd(4242);

  Histogram latency;
  RunResult result;
  result.seconds = TimedRun([&] {
    sim::SimContext* ctx = sim::SimContext::Current();
    struct Inflight {
      tablet::PendingWrite pending;
      sim::VirtualTime submitted_at;
    };
    std::deque<Inflight> inflight;
    auto complete_front = [&] {
      Inflight f_op = std::move(inflight.front());
      inflight.pop_front();
      if (!f->server->CompleteWrite(&f_op.pending).ok()) std::abort();
      latency.Add(static_cast<double>(ctx->now() - f_op.submitted_at));
    };
    for (uint64_t i = 0; i < n; i++) {
      auto pending = f->server->SubmitPut(
          f->uid, {{workload.KeyAt(i), workload.MakeValue(&rnd)}}, ack);
      if (!pending.ok()) std::abort();
      inflight.push_back(Inflight{std::move(*pending), ctx->now()});
      if (inflight.size() >= static_cast<size_t>(writers)) complete_front();
    }
    while (!inflight.empty()) complete_front();
  });
  result.p50_us = latency.Percentile(50);
  result.p99_us = latency.Percentile(99);
  auto delta = obs::MetricsRegistry::Global().Snapshot().Delta(before);
  const obs::MetricPoint* batch = delta.Find("log.append.batch_size");
  result.batch_avg = batch != nullptr ? batch->avg : 0.0;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  PrintHeader("Write path", "Group commit + pipelined quorum appends");
  BenchResult json("group_commit");
  const uint64_t n = Scaled(100000);
  json.Set("ops_per_run", static_cast<double>(n));

  // -- Phase 1: batching throughput --------------------------------------
  std::printf("-- phase 1: %llu x %lluB writes, batch window off vs on "
              "(quorum ack) --\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(kValueBytes));
  std::printf("%8s %12s %14s %14s %12s %10s\n", "writers", "window(us)",
              "throughput", "batch_avg", "p99(us)", "speedup");
  const int writer_counts[] = {1, 4, 8, 16};
  double speedup_at_8 = 0;
  for (int writers : writer_counts) {
    double base_ops_s = 0;
    for (sim::VirtualTime window : {sim::VirtualTime{0},
                                    sim::VirtualTime{200},
                                    sim::VirtualTime{1000}}) {
      WriteFixture fixture(window);
      RunResult r = RunWriters(&fixture, writers, n, log::AckMode::kQuorum);
      double ops_s = static_cast<double>(n) / r.seconds;
      if (window == 0) base_ops_s = ops_s;
      double speedup = ops_s / base_ops_s;
      if (writers == 8 && window == 200) speedup_at_8 = speedup;
      std::printf("%8d %12lld %12.0f/s %14.1f %12.1f %9.2fx\n", writers,
                  static_cast<long long>(window), ops_s, r.batch_avg,
                  r.p99_us, speedup);
      json.AddRow("batching",
                  std::to_string(writers) + "w/" + std::to_string(window) +
                      "us",
                  {{"writers", writers},
                   {"window_us", static_cast<double>(window)},
                   {"ops_per_s", ops_s},
                   {"batch_avg", r.batch_avg},
                   {"p99_us", r.p99_us}});
    }
  }
  json.Set("speedup_8_writers", speedup_at_8);

  // -- Phase 2: straggler replica, quorum vs full ack --------------------
  constexpr sim::VirtualTime kStallUs = 20000;
  std::printf("-- phase 2: one log replica disk-stalled %lldus, 8 writers, "
              "window 200us --\n",
              static_cast<long long>(kStallUs));
  std::printf("%8s %14s %12s %12s\n", "ack", "throughput", "p50(us)",
              "p99(us)");
  double p99[2] = {0, 0};
  int i = 0;
  for (log::AckMode ack : {log::AckMode::kAll, log::AckMode::kQuorum}) {
    WriteFixture fixture(/*window_us=*/200);
    fixture.dfs->data_node(2)->disk()->set_stall_us(kStallUs);
    RunResult r = RunWriters(&fixture, 8, n, ack);
    double ops_s = static_cast<double>(n) / r.seconds;
    const char* label = ack == log::AckMode::kAll ? "all" : "quorum";
    std::printf("%8s %12.0f/s %12.1f %12.1f\n", label, ops_s, r.p50_us,
                r.p99_us);
    json.AddRow("straggler", label,
                {{"ops_per_s", ops_s}, {"p50_us", r.p50_us},
                 {"p99_us", r.p99_us}});
    p99[i++] = r.p99_us;
  }
  json.Set("straggler_p99_all_us", p99[0]);
  json.Set("straggler_p99_quorum_us", p99[1]);
  json.Set("straggler_p99_win", p99[1] > 0 ? p99[0] / p99[1] : 0);

  PrintComponentBreakdown();
  PrintPaperClaim(
      "Group commit amortizes the per-append DFS sync across concurrent "
      "writers (throughput rises with the batch size), and quorum acks take "
      "a disk-stalled straggler replica off the commit path (p99 drops to "
      "the healthy replicas' latency; the straggler completes in the "
      "background).");
  json.WriteFile();
  return 0;
}
