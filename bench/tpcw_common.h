// Shared TPC-W experiment (Figures 15/16, paper §4.4): a webshop on a
// LogBase cluster. Read-only transactions query one product from the item
// table; update transactions read the customer's shopping cart and write an
// order. Cart and order keys share the customer prefix, so update
// transactions stay single-server (entity-group clustering, §3.2).

#ifndef LOGBASE_BENCH_TPCW_COMMON_H_
#define LOGBASE_BENCH_TPCW_COMMON_H_

#include "bench/common.h"
#include "bench/mixed_common.h"
#include "src/sstable/bloom_filter.h"
#include "src/txn/transaction_manager.h"
#include "src/workload/tpcw.h"

namespace logbase::bench {

struct TpcwResult {
  double latency_ms = 0;
  double tps = 0;
  uint64_t aborted = 0;
};

inline TpcwResult RunTpcw(int nodes, workload::TpcwMix mix,
                          uint64_t txns_per_client) {
  const uint64_t items_per_node = ClusterRecordsPerNode();
  const uint64_t customers_per_node = ClusterRecordsPerNode();

  LogBaseCluster fixture(nodes);
  // Two tables per server: items and customer data (carts + orders).
  std::vector<std::string> item_uid(nodes), cust_uid(nodes);
  for (int i = 0; i < nodes; i++) {
    tablet::TabletDescriptor item;
    item.table_id = 2;
    item.table_name = "item";
    item.range_id = i;
    item_uid[i] = item.uid();
    if (!fixture.servers[i]->OpenTablet(item).ok()) std::abort();
    tablet::TabletDescriptor cust;
    cust.table_id = 3;
    cust.table_name = "customer";
    cust.range_id = i;
    cust_uid[i] = cust.uid();
    if (!fixture.servers[i]->OpenTablet(cust).ok()) std::abort();
  }
  auto route = [nodes](const Slice& key) {
    return static_cast<int>(sstable::BloomHash(key) % nodes);
  };
  // Customer routing by prefix so cart+orders co-locate.
  auto route_customer = [&](const std::string& key) {
    return route(Slice(key.data(), 14));  // "cust%010llu"
  };

  workload::TpcwOptions topts;
  topts.item_count = items_per_node * nodes;
  topts.customer_count = customers_per_node * nodes;
  workload::TpcwWorkload generator(topts);

  // Bulk load items and carts.
  {
    ResetCosts(fixture.dfs.get(), fixture.network.get());
    Random rnd(11);
    std::vector<std::vector<std::pair<std::string, std::string>>> item_batches(
        nodes), cust_batches(nodes);
    auto flush_batches = [&](auto& batches, const std::vector<std::string>&
                                                 uids) {
      for (int i = 0; i < nodes; i++) {
        if (batches[i].empty()) continue;
        if (!fixture.servers[i]->PutBatch(uids[i], batches[i]).ok()) {
          std::abort();
        }
        batches[i].clear();
      }
    };
    for (uint64_t i = 0; i < topts.item_count; i++) {
      std::string key = generator.ItemKey(i);
      item_batches[route(Slice(key))].emplace_back(std::move(key),
                                                   generator.MakeValue(&rnd));
      if (i % 5000 == 4999) flush_batches(item_batches, item_uid);
    }
    flush_batches(item_batches, item_uid);
    for (uint64_t c = 0; c < topts.customer_count; c++) {
      std::string key = generator.CartKey(c);
      cust_batches[route_customer(key)].emplace_back(
          std::move(key), generator.MakeValue(&rnd));
      if (c % 5000 == 4999) flush_batches(cust_batches, cust_uid);
    }
    flush_batches(cust_batches, cust_uid);
  }

  // One transaction client per node, closed loop, interleaved rounds.
  ResetCosts(fixture.dfs.get(), fixture.network.get());
  std::vector<sim::SimContext> clients(nodes);
  std::vector<std::unique_ptr<txn::TransactionManager>> managers;
  for (int c = 0; c < nodes; c++) {
    managers.push_back(std::make_unique<txn::TransactionManager>(
        &fixture.coord, c, [&fixture](const std::string& uid) {
          for (auto& server : fixture.servers) {
            if (server->FindTablet(uid) != nullptr) return server.get();
          }
          return static_cast<tablet::TabletServer*>(nullptr);
        }));
  }
  std::vector<Random> rngs;
  for (int c = 0; c < nodes; c++) rngs.emplace_back(300 + c);

  TpcwResult result;
  Histogram latency;
  for (uint64_t round = 0; round < txns_per_client; round++) {
    for (int c = 0; c < nodes; c++) {
      sim::SimContext::Scope scope(&clients[c]);
      workload::TpcwWorkload::Txn spec = generator.NextTxn(&rngs[c], mix);
      sim::VirtualTime begin = clients[c].now();
      auto txn = managers[c]->Begin();
      Status outcome = Status::OK();
      if (spec.update) {
        int node = route_customer(spec.cart_key);
        auto cart = managers[c]->Read(txn.get(), cust_uid[node],
                                      Slice(spec.cart_key));
        if (cart.ok() || cart.status().IsNotFound()) {
          Status w = managers[c]->Write(txn.get(), cust_uid[node],
                                        Slice(spec.order_key),
                                        Slice(spec.order_value));
          outcome = w.ok() ? managers[c]->Commit(txn.get()) : w;
        } else {
          outcome = cart.status();
        }
      } else {
        int node = route(Slice(spec.item_key));
        auto item =
            managers[c]->Read(txn.get(), item_uid[node], Slice(spec.item_key));
        outcome = item.ok() || item.status().IsNotFound()
                      ? managers[c]->Commit(txn.get())
                      : item.status();
      }
      if (!outcome.ok()) {
        managers[c]->Abort(txn.get());
        result.aborted++;
      }
      latency.Add(static_cast<double>(clients[c].now() - begin));
    }
  }

  double makespan = 0;
  for (const sim::SimContext& client : clients) {
    makespan = std::max(makespan, client.now() / 1e6);
  }
  result.latency_ms = latency.Average() / 1000.0;
  result.tps = makespan > 0
                   ? static_cast<double>(txns_per_client) * nodes / makespan
                   : 0;
  return result;
}

}  // namespace logbase::bench

#endif  // LOGBASE_BENCH_TPCW_COMMON_H_
