// Figure 12 — Mixed YCSB throughput (ops/sec) at 3/6/12/24 nodes for the
// 95%- and 75%-update mixes, LogBase vs HBase.
//
// Updates run through the group-commit write path (append queue + quorum
// ack replication); the component breakdown's group_commit line shows the
// per-batch coalescing this mix achieved.

#include "bench/common.h"
#include "bench/mixed_common.h"

using namespace logbase;
using namespace logbase::bench;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  PrintHeader("Figure 12", "Mixed workload throughput (ops/s), LogBase vs "
                           "HBase, 95%/75% update mixes");
  const uint64_t kOpsPerClient = 2000;
  std::printf("%6s %6s %16s %14s %8s\n", "nodes", "mix", "LogBase(ops/s)",
              "HBase(ops/s)", "ratio");
  for (int nodes : {3, 6, 12, 24}) {
    for (double update : {0.95, 0.75}) {
      auto logbase =
          RunMixedExperiment(EngineKind::kLogBase, nodes, update,
                             kOpsPerClient);
      auto hbase = RunMixedExperiment(EngineKind::kHBase, nodes, update,
                                      kOpsPerClient);
      std::printf("%6d %5.0f%% %16.0f %14.0f %8.2fx\n", nodes, update * 100,
                  logbase.run.throughput_ops_per_sec,
                  hbase.run.throughput_ops_per_sec,
                  logbase.run.throughput_ops_per_sec /
                      hbase.run.throughput_ops_per_sec);
    }
  }
  PrintComponentBreakdown();
  PrintPaperClaim(
      "throughput scales with nodes for both systems; higher update "
      "fraction gives higher throughput (writes are cheaper than reads); "
      "LogBase beats HBase on every mix because it writes once and reads "
      "with one seek (Fig. 12).");
  return 0;
}
