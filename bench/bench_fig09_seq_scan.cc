// Figure 9 — Sequential scan of the entire table, 250K/500K/1M tuples.
// LogBase scans its log segments (records carry table/column-group/LSN
// metadata, so the log is a little larger than HBase's data files) and
// checks each record's version against the index; HBase scans its store
// files. The paper reports LogBase slightly SLOWER here.

#include "bench/common.h"

using namespace logbase;
using namespace logbase::bench;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  PrintHeader("Figure 9", "Sequential scan time (s), LogBase vs HBase");
  std::printf("%12s %14s %12s %10s %8s\n", "tuples(paper)", "tuples(run)",
              "LogBase(s)", "HBase(s)", "LB/HB");
  for (uint64_t paper_n : {250000ull, 500000ull, 1000000ull}) {
    uint64_t n = Scaled(paper_n);
    workload::YcsbOptions wopts;
    wopts.record_count = n;
    wopts.value_bytes = 1024;
    workload::YcsbWorkload workload(wopts);

    MicroLogBase logbase_fixture;
    core::TabletServerEngine logbase_engine(logbase_fixture.server.get(),
                                            "LogBase");
    SequentialLoad(&logbase_engine, logbase_fixture.uid, workload, n,
                   logbase_fixture.dfs.get());
    ResetCosts(logbase_fixture.dfs.get());
    double logbase_s = TimedRun([&] {
      auto live = logbase_fixture.server->FullScanCount(logbase_fixture.uid);
      // Hash collisions in key generation make a handful of duplicates.
      if (!live.ok() || *live < n - n / 100) std::abort();
    });

    MicroHBase hbase_fixture;
    core::HBaseEngine hbase_engine(hbase_fixture.server.get());
    SequentialLoad(&hbase_engine, hbase_fixture.uid, workload, n,
                   hbase_fixture.dfs.get());
    if (!hbase_fixture.server->FlushAll().ok()) return 1;
    ResetCosts(hbase_fixture.dfs.get());
    double hbase_s = TimedRun([&] {
      auto rows = hbase_engine.Scan(hbase_fixture.uid, "", "");
      if (!rows.ok() || rows->size() < n - n / 100) std::abort();
    });

    std::printf("%12llu %14llu %12.2f %10.2f %8.2fx\n",
                static_cast<unsigned long long>(paper_n),
                static_cast<unsigned long long>(n), logbase_s, hbase_s,
                logbase_s / hbase_s);
  }
  PrintComponentBreakdown();
  PrintPaperClaim(
      "LogBase is slightly slower on full scans: log entries carry extra "
      "log metadata so the log is larger than HBase's data files, and each "
      "scanned record's version is checked against the index (Fig. 9).");
  return 0;
}
