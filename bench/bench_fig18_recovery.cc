// Figure 18 — Recovery time for a failed tablet server holding 600-900MB
// (scaled), with a checkpoint taken at 500MB vs without any checkpoint.
// With a checkpoint, restart reloads the persisted index files and redoes
// only the log tail; without, it scans the entire log.

#include "bench/common.h"

#include "src/fault/fault_injector.h"

using namespace logbase;
using namespace logbase::bench;

namespace {

double RecoverAfterLoading(uint64_t checkpoint_at_records,
                           uint64_t total_records, bool with_checkpoint,
                           tablet::RecoveryStats* stats) {
  workload::YcsbOptions wopts;
  wopts.record_count = total_records;
  wopts.value_bytes = 1024;
  workload::YcsbWorkload workload(wopts);

  MicroLogBase fixture;
  core::TabletServerEngine engine(fixture.server.get(), "LogBase");
  SequentialLoad(&engine, fixture.uid, workload, checkpoint_at_records,
                 fixture.dfs.get());
  if (with_checkpoint) {
    if (!fixture.server->Checkpoint().ok()) std::abort();
  }
  // Keep loading past the checkpoint up to the crash point.
  ResetCosts(fixture.dfs.get());
  Random rnd(77);
  sim::SimContext load_ctx;
  {
    sim::SimContext::Scope scope(&load_ctx);
    for (uint64_t i = checkpoint_at_records; i < total_records; i++) {
      if (!engine.Put(fixture.uid, Slice(workload.KeyAt(i)),
                      Slice(workload.MakeValue(&rnd)))
               .ok()) {
        std::abort();
      }
    }

    // Deliver the crash through the fault engine — the same injection point
    // the chaos suite drives — rather than poking the server directly.
    fault::FaultTargets targets;
    targets.num_nodes = 1;
    targets.crash_server = [&](int) { fixture.server->Crash(); };
    fault::FaultPlan plan;
    plan.Crash(load_ctx.now() + 1, 0);
    fault::FaultInjector injector(targets, plan);
    load_ctx.Advance(2);
    if (!injector.AdvanceTo(load_ctx.now()).ok()) std::abort();
  }
  if (fixture.server->running()) std::abort();
  ResetCosts(fixture.dfs.get());
  return TimedRun([&] {
    if (!fixture.server->Start(stats).ok()) std::abort();
  });
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  PrintHeader("Figure 18",
              "Recovery time (s): checkpoint at 500MB vs no checkpoint");
  const uint64_t checkpoint_at = Scaled(500ull << 10);  // records (1KB each)
  std::printf("%12s %12s %16s %18s\n", "data(paper)", "data(run)",
              "with ckpt(s)", "without ckpt(s)");
  for (uint64_t paper_mb : {600ull, 700ull, 800ull, 900ull}) {
    uint64_t total = Scaled(paper_mb << 10);
    tablet::RecoveryStats with_stats, without_stats;
    double with_s =
        RecoverAfterLoading(checkpoint_at, total, true, &with_stats);
    double without_s =
        RecoverAfterLoading(checkpoint_at, total, false, &without_stats);
    if (!with_stats.loaded_checkpoint || without_stats.loaded_checkpoint) {
      std::abort();
    }
    std::printf("%10lluMB %10lluMB %16.3f %18.3f\n",
                static_cast<unsigned long long>(paper_mb),
                static_cast<unsigned long long>(total >> 10), with_s,
                without_s);
  }
  PrintComponentBreakdown();
  PrintPaperClaim(
      "recovery with a checkpoint is significantly faster: reload the "
      "persisted index files and scan only the log segments after the "
      "checkpoint, instead of scanning the entire log (Fig. 18).");
  return 0;
}
