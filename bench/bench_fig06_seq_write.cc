// Figure 6 — Sequential write: time to insert 250K/500K/1M x 1KB tuples,
// LogBase vs HBase, single tablet server on a 3-node DFS.
//
// Mechanism under test: LogBase writes each record once (log append + memory
// index); HBase writes it twice (WAL append now, memtable flush to a store
// file later), so HBase pays roughly double the disk traffic.

#include "bench/common.h"

using namespace logbase;
using namespace logbase::bench;

int main() {
  PrintHeader("Figure 6", "Sequential write time (s), LogBase vs HBase");
  const uint64_t points[] = {250000, 500000, 1000000};

  std::printf("%12s %14s %12s %10s %8s\n", "tuples(paper)", "tuples(run)",
              "LogBase(s)", "HBase(s)", "ratio");
  for (uint64_t paper_n : points) {
    uint64_t n = Scaled(paper_n);
    workload::YcsbOptions wopts;
    wopts.record_count = n;
    wopts.value_bytes = 1024;
    workload::YcsbWorkload workload(wopts);

    MicroLogBase logbase_fixture;
    core::TabletServerEngine logbase_engine(logbase_fixture.server.get(),
                                            "LogBase");
    double logbase_s =
        SequentialLoad(&logbase_engine, logbase_fixture.uid, workload, n,
                       logbase_fixture.dfs.get());

    MicroHBase hbase_fixture;
    core::HBaseEngine hbase_engine(hbase_fixture.server.get());
    double hbase_s =
        SequentialLoad(&hbase_engine, hbase_fixture.uid, workload, n,
                       hbase_fixture.dfs.get());
    // HBase eventually persists the memtable too; include the trailing
    // flush so both systems have durably stored all data.
    hbase_s += TimedRun([&] {
      if (!hbase_fixture.server->FlushAll().ok()) std::abort();
    });

    std::printf("%12llu %14llu %12.2f %10.2f %8.2fx\n",
                static_cast<unsigned long long>(paper_n),
                static_cast<unsigned long long>(n), logbase_s, hbase_s,
                hbase_s / logbase_s);
  }
  PrintComponentBreakdown();
  PrintPaperClaim(
      "LogBase outperforms HBase by ~50% on sequential writes (it writes "
      "data to the DFS once; HBase writes the WAL now and flushes memtables "
      "to data files later).");
  return 0;
}
