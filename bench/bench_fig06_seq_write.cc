// Figure 6 — Sequential write: time to insert 250K/500K/1M x 1KB tuples,
// LogBase vs HBase, single tablet server on a 3-node DFS.
//
// Mechanism under test: LogBase writes each record once (log append + memory
// index); HBase writes it twice (WAL append now, memtable flush to a store
// file later), so HBase pays roughly double the disk traffic. Writes go
// through the group-commit write path (single-writer sequential load keeps
// one record per batch; the LogBase-8w column adds 8 concurrent writers so
// batches coalesce and the per-append DFS sync amortizes).

#include <deque>

#include "bench/common.h"

using namespace logbase;
using namespace logbase::bench;

namespace {

/// Loads `n` records with `writers` concurrent clients round-robining
/// through the async SubmitPut/CompleteWrite pair; returns virtual seconds.
double BatchedLoad(tablet::TabletServer* server, const std::string& uid,
                   const workload::YcsbWorkload& workload, uint64_t n,
                   dfs::Dfs* dfs, int writers) {
  ResetCosts(dfs);
  Random rnd(4242);
  return TimedRun([&] {
    std::deque<tablet::PendingWrite> inflight;
    auto complete_front = [&] {
      tablet::PendingWrite pending = std::move(inflight.front());
      inflight.pop_front();
      if (!server->CompleteWrite(&pending).ok()) std::abort();
    };
    for (uint64_t i = 0; i < n; i++) {
      auto pending = server->SubmitPut(
          uid, {{workload.KeyAt(i), workload.MakeValue(&rnd)}});
      if (!pending.ok()) std::abort();
      inflight.push_back(std::move(*pending));
      if (inflight.size() >= static_cast<size_t>(writers)) complete_front();
    }
    while (!inflight.empty()) complete_front();
  });
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  PrintHeader("Figure 6", "Sequential write time (s), LogBase vs HBase");
  const uint64_t points[] = {250000, 500000, 1000000};

  std::printf("%12s %14s %12s %12s %10s %8s\n", "tuples(paper)",
              "tuples(run)", "LogBase(s)", "LogBase-8w(s)", "HBase(s)",
              "ratio");
  for (uint64_t paper_n : points) {
    uint64_t n = Scaled(paper_n);
    workload::YcsbOptions wopts;
    wopts.record_count = n;
    wopts.value_bytes = 1024;
    workload::YcsbWorkload workload(wopts);

    MicroLogBase logbase_fixture;
    core::TabletServerEngine logbase_engine(logbase_fixture.server.get(),
                                            "LogBase");
    double logbase_s =
        SequentialLoad(&logbase_engine, logbase_fixture.uid, workload, n,
                       logbase_fixture.dfs.get());

    MicroLogBase batched_fixture;
    double batched_s =
        BatchedLoad(batched_fixture.server.get(), batched_fixture.uid,
                    workload, n, batched_fixture.dfs.get(), /*writers=*/8);

    MicroHBase hbase_fixture;
    core::HBaseEngine hbase_engine(hbase_fixture.server.get());
    double hbase_s =
        SequentialLoad(&hbase_engine, hbase_fixture.uid, workload, n,
                       hbase_fixture.dfs.get());
    // HBase eventually persists the memtable too; include the trailing
    // flush so both systems have durably stored all data.
    hbase_s += TimedRun([&] {
      if (!hbase_fixture.server->FlushAll().ok()) std::abort();
    });

    std::printf("%12llu %14llu %12.2f %13.2f %10.2f %8.2fx\n",
                static_cast<unsigned long long>(paper_n),
                static_cast<unsigned long long>(n), logbase_s, batched_s,
                hbase_s, hbase_s / logbase_s);
  }
  PrintComponentBreakdown();
  PrintPaperClaim(
      "LogBase outperforms HBase by ~50% on sequential writes (it writes "
      "data to the DFS once; HBase writes the WAL now and flushes memtables "
      "to data files later).");
  return 0;
}
