// Micro ablation — single log per server vs one log per column group
// (§3.4 design choice): the multi-log layout costs extra disk seeks on the
// write path (interleaved appends to several files) but recovers one column
// group without scanning the others' data. LogBase picks the single log for
// sustained write throughput.

#include "bench/common.h"
#include "src/log/log_reader.h"
#include "src/log/log_writer.h"

using namespace logbase;
using namespace logbase::bench;

namespace {

log::LogRecord MakeRecord(uint32_t group, uint64_t i) {
  log::LogRecord record;
  record.type = log::LogRecordType::kData;
  record.key.table_id = 1;
  record.key.tablet_id = group << 20;
  record.row.primary_key = "key" + std::to_string(i);
  record.row.column_group = group;
  record.row.timestamp = i + 1;
  record.value = std::string(1024, 'v');
  return record;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  PrintHeader("Micro: log layout",
              "One log per server vs one log per column group (§3.4)");
  const int kGroups = 4;
  const uint64_t kRecords = 40000;  // spread over the groups

  // --- Single shared log ---------------------------------------------------
  double single_write_s, single_recover_s;
  {
    dfs::DfsOptions dfs_options;
    dfs_options.num_nodes = 3;
    dfs::Dfs dfs(dfs_options);
    dfs::DfsFileSystem fs(&dfs, 0);
    log::LogWriter writer(&fs, "/log", 0);
    if (!writer.Open().ok()) return 1;
    single_write_s = TimedRun([&] {
      for (uint64_t i = 0; i < kRecords; i++) {
        if (!writer.Append(MakeRecord(i % kGroups, i)).ok()) std::abort();
      }
    });
    // Recovering ONE column group scans the whole shared log.
    ResetCosts(&dfs);
    log::LogReader reader(&fs, "/log");
    single_recover_s = TimedRun([&] {
      auto scanner = reader.NewScanner();
      uint64_t mine = 0;
      for (; (*scanner)->Valid(); (*scanner)->Next()) {
        if ((*scanner)->record().row.column_group == 0) mine++;
      }
      if (mine != kRecords / kGroups) std::abort();
    });
  }

  // --- One log per column group ---------------------------------------------
  double multi_write_s, multi_recover_s;
  {
    dfs::DfsOptions dfs_options;
    dfs_options.num_nodes = 3;
    dfs::Dfs dfs(dfs_options);
    dfs::DfsFileSystem fs(&dfs, 0);
    std::vector<std::unique_ptr<log::LogWriter>> writers;
    for (int g = 0; g < kGroups; g++) {
      writers.push_back(std::make_unique<log::LogWriter>(
          &fs, "/log-cg" + std::to_string(g), g));
      if (!writers.back()->Open().ok()) return 1;
    }
    multi_write_s = TimedRun([&] {
      for (uint64_t i = 0; i < kRecords; i++) {
        uint32_t g = i % kGroups;
        if (!writers[g]->Append(MakeRecord(g, i)).ok()) std::abort();
      }
    });
    // Recovering one column group scans only its own log.
    ResetCosts(&dfs);
    log::LogReader reader(&fs, "/log-cg0", 0);
    multi_recover_s = TimedRun([&] {
      auto scanner = reader.NewScanner();
      uint64_t mine = 0;
      for (; (*scanner)->Valid(); (*scanner)->Next()) mine++;
      if (mine != kRecords / kGroups) std::abort();
    });
  }

  std::printf("%-24s %14s %20s\n", "layout", "write(s)",
              "recover 1 group(s)");
  std::printf("%-24s %14.2f %20.3f\n", "single log (LogBase)",
              single_write_s, single_recover_s);
  std::printf("%-24s %14.2f %20.3f\n", "log per column group",
              multi_write_s, multi_recover_s);
  PrintComponentBreakdown();
  PrintPaperClaim(
      "a per-column-group log speeds up recovery of one group (no need to "
      "scan unrelated data) but costs more connections/seeks on the write "
      "path; LogBase chooses the single log per server for sustained write "
      "throughput and regains locality via compaction (§3.4).");
  return 0;
}
