// Shared experiment code for Figures 11-14 and 22: parallel loading and
// mixed YCSB runs against LogBase / HBase / LRS clusters of 3..24 nodes.

#ifndef LOGBASE_BENCH_MIXED_COMMON_H_
#define LOGBASE_BENCH_MIXED_COMMON_H_

#include "bench/common.h"

namespace logbase::bench {

/// Per-node record count for cluster experiments: the paper loads 1M x 1KB
/// per node; memory forces an extra 10x reduction on top of the global
/// scale (noted in every binary's header).
inline uint64_t ClusterRecordsPerNode() { return Scaled(1000000) / 10; }

enum class EngineKind { kLogBase, kHBase, kLrs };

inline const char* EngineName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kLogBase:
      return "LogBase";
    case EngineKind::kHBase:
      return "HBase";
    case EngineKind::kLrs:
      return "LRS";
  }
  return "?";
}

struct MixedResult {
  workload::DriverResult load;
  workload::DriverResult run;
};

/// Builds a `kind` cluster of `nodes`, loads records_per_node each, then
/// runs `ops_per_client` YCSB ops per node-client at `update_proportion`
/// (skipped when ops_per_client == 0).
inline MixedResult RunMixedExperiment(EngineKind kind, int nodes,
                                      double update_proportion,
                                      uint64_t ops_per_client) {
  uint64_t records_per_node = ClusterRecordsPerNode();
  workload::YcsbOptions wopts;
  wopts.record_count = records_per_node * nodes;
  wopts.value_bytes = 1024;
  wopts.update_proportion = update_proportion;
  workload::YcsbWorkload workload(wopts);

  MixedResult result;
  auto execute = [&](workload::EngineCluster& cluster, dfs::Dfs* dfs,
                     sim::NetworkModel* network) {
    ResetCosts(dfs, network);
    result.load = workload::ClosedLoopDriver::Load(
        cluster, workload, records_per_node, /*batch_size=*/50);
    if (ops_per_client > 0) {
      ResetCosts(dfs, network);
      result.run = workload::ClosedLoopDriver::RunYcsb(cluster, &workload,
                                                       ops_per_client);
    }
  };

  uint64_t data_per_node = records_per_node * wopts.value_bytes;
  if (kind == EngineKind::kHBase) {
    HBaseCluster fixture(nodes, 8ull << 20, data_per_node);
    execute(fixture.cluster, fixture.dfs.get(), fixture.network.get());
  } else {
    LogBaseCluster fixture(nodes,
                           kind == EngineKind::kLrs ? index::IndexKind::kLsm
                                                    : index::IndexKind::kBlink,
                           8ull << 20, data_per_node);
    execute(fixture.cluster, fixture.dfs.get(), fixture.network.get());
  }
  return result;
}

}  // namespace logbase::bench

#endif  // LOGBASE_BENCH_MIXED_COMMON_H_
