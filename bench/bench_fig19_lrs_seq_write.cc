// Figure 19 — Sequential write, LogBase vs LRS (§4.6): same log layout, but
// LRS indexes with a disk-resident LSM-tree (4MB write buffer) instead of
// the in-memory B-link tree, so index maintenance costs extra I/O.

#include "bench/common.h"

using namespace logbase;
using namespace logbase::bench;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  PrintHeader("Figure 19", "Sequential write time (s), LogBase vs LRS");
  std::printf("%12s %14s %12s %10s %8s\n", "tuples(paper)", "tuples(run)",
              "LogBase(s)", "LRS(s)", "ratio");
  for (uint64_t paper_n : {250000ull, 500000ull, 1000000ull}) {
    uint64_t n = Scaled(paper_n);
    workload::YcsbOptions wopts;
    wopts.record_count = n;
    wopts.value_bytes = 1024;
    workload::YcsbWorkload workload(wopts);

    MicroLogBase logbase_fixture;
    core::TabletServerEngine logbase_engine(logbase_fixture.server.get(),
                                            "LogBase");
    double logbase_s = SequentialLoad(&logbase_engine, logbase_fixture.uid,
                                      workload, n, logbase_fixture.dfs.get());

    MicroLogBase lrs_fixture(/*read_buffer_bytes=*/0,
                             index::IndexKind::kLsm);
    core::TabletServerEngine lrs_engine(lrs_fixture.server.get(), "LRS");
    double lrs_s = SequentialLoad(&lrs_engine, lrs_fixture.uid, workload, n,
                                  lrs_fixture.dfs.get());

    std::printf("%12llu %14llu %12.2f %10.2f %8.2fx\n",
                static_cast<unsigned long long>(paper_n),
                static_cast<unsigned long long>(n), logbase_s, lrs_s,
                lrs_s / logbase_s);
  }
  PrintComponentBreakdown();
  PrintPaperClaim(
      "LRS sequential write performance is only slightly lower than "
      "LogBase: LevelDB-style buffering keeps LSM index maintenance cheap "
      "(Fig. 19), so indexes can scale beyond memory without much write "
      "cost.");
  return 0;
}
