// Micro ablation — index structures (real wall-clock time via
// google-benchmark): the B-link tree against std::map (single-threaded
// baseline) and the LSM-backed index, for inserts, point lookups,
// versioned lookups and range scans. Supports the §3.5 sizing discussion.

#include <benchmark/benchmark.h>

#include "bench/common.h"

#include <map>

#include "src/index/blink_tree.h"
#include "src/index/lsm_index.h"
#include "src/util/io.h"
#include "src/util/random.h"

namespace {

using namespace logbase;

log::LogPtr Ptr(uint64_t i) {
  return log::LogPtr{0, 1, i * 100, 100};
}

std::string Key(uint64_t i) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "user%012llu",
                static_cast<unsigned long long>(i));
  return buf;
}

void BM_BlinkInsert(benchmark::State& state) {
  index::BlinkTree tree;
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Insert(Key(i), 1, Ptr(i)));
    i++;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BlinkInsert);

void BM_BlinkGetLatest(benchmark::State& state) {
  index::BlinkTree tree;
  const uint64_t n = state.range(0);
  for (uint64_t i = 0; i < n; i++) (void)tree.Insert(Key(i), 1, Ptr(i));
  Random rnd(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.GetLatest(Key(rnd.Uniform(n))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BlinkGetLatest)->Arg(10000)->Arg(100000);

void BM_BlinkGetAsOf(benchmark::State& state) {
  index::BlinkTree tree;
  const uint64_t n = 10000;
  for (uint64_t i = 0; i < n; i++) {
    for (uint64_t v = 1; v <= 4; v++) (void)tree.Insert(Key(i), v * 10, Ptr(i));
  }
  Random rnd(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.GetAsOf(Key(rnd.Uniform(n)), rnd.Uniform(50)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BlinkGetAsOf);

void BM_BlinkScan100(benchmark::State& state) {
  index::BlinkTree tree;
  const uint64_t n = 100000;
  for (uint64_t i = 0; i < n; i++) (void)tree.Insert(Key(i), 1, Ptr(i));
  Random rnd(3);
  for (auto _ : state) {
    uint64_t start = rnd.Uniform(n - 200);
    benchmark::DoNotOptimize(
        tree.ScanRange(Key(start), Key(start + 100), ~0ull));
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_BlinkScan100);

void BM_StdMapInsert(benchmark::State& state) {
  std::map<std::pair<std::string, uint64_t>, log::LogPtr> map;
  uint64_t i = 0;
  for (auto _ : state) {
    map.emplace(std::make_pair(Key(i), 1ull), Ptr(i));
    i++;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StdMapInsert);

void BM_StdMapGet(benchmark::State& state) {
  std::map<std::pair<std::string, uint64_t>, log::LogPtr> map;
  const uint64_t n = 100000;
  for (uint64_t i = 0; i < n; i++) {
    map.emplace(std::make_pair(Key(i), 1ull), Ptr(i));
  }
  Random rnd(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        map.lower_bound(std::make_pair(Key(rnd.Uniform(n)), 0ull)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StdMapGet);

void BM_LsmIndexInsert(benchmark::State& state) {
  MemFileSystem fs;
  lsm::LsmOptions options;
  auto idx = index::LsmIndex::Open(options, &fs, "/idx");
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize((*idx)->Insert(Key(i), 1, Ptr(i)));
    i++;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LsmIndexInsert);

void BM_LsmIndexGet(benchmark::State& state) {
  MemFileSystem fs;
  lsm::LsmOptions options;
  auto idx = index::LsmIndex::Open(options, &fs, "/idx");
  const uint64_t n = 10000;
  for (uint64_t i = 0; i < n; i++) (void)(*idx)->Insert(Key(i), 1, Ptr(i));
  Random rnd(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize((*idx)->GetLatest(Key(rnd.Uniform(n))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LsmIndexGet);

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  logbase::bench::PrintComponentBreakdown();
  ::benchmark::Shutdown();
  return 0;
}
