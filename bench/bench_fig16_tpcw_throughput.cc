// Figure 16 — TPC-W transaction throughput (TPS) at 3/6/12/24 nodes for the
// three mixes: near-linear scaling under browsing/shopping.

#include "bench/tpcw_common.h"

using namespace logbase;
using namespace logbase::bench;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  PrintHeader("Figure 16", "TPC-W transaction throughput (TPS) per mix");
  const uint64_t kTxnsPerClient = 1000;
  std::printf("%6s %12s %12s %12s\n", "nodes", "browsing", "shopping",
              "ordering");
  for (int nodes : {3, 6, 12, 24}) {
    double tps[3];
    int i = 0;
    for (auto mix : {workload::TpcwMix::kBrowsing,
                     workload::TpcwMix::kShopping,
                     workload::TpcwMix::kOrdering}) {
      tps[i++] = RunTpcw(nodes, mix, kTxnsPerClient).tps;
    }
    std::printf("%6d %12.0f %12.0f %12.0f\n", nodes, tps[0], tps[1], tps[2]);
  }
  PrintComponentBreakdown();
  PrintPaperClaim(
      "transaction throughput scales (near linearly for browsing/shopping) "
      "as nodes are added: read-only transactions always commit under "
      "MVOCC, and entity-group key design keeps update transactions "
      "single-server (Fig. 16).");
  return 0;
}
