// Micro ablation — read-buffer replacement strategies (§3.6.2): the paper
// makes the replacement policy pluggable with LRU as the default; this
// bench compares LRU vs FIFO hit rates under zipfian and scan-heavy traces.

#include "bench/common.h"
#include "src/tablet/read_buffer.h"

using namespace logbase;
using namespace logbase::bench;

namespace {

double RunTrace(std::unique_ptr<tablet::ReplacementPolicy> policy,
                bool scan_heavy) {
  const uint64_t kKeys = 10000;
  const size_t kCapacity = 2 << 20;  // holds ~2K of 10K records
  tablet::ReadBuffer buffer(kCapacity, std::move(policy));
  ZipfianGenerator zipf(kKeys, 0.99);
  Random rnd(17);
  uint64_t scan_cursor = 0;
  const std::string value(1024, 'v');
  for (int i = 0; i < 60000; i++) {
    std::string key;
    if (scan_heavy && i % 4 == 0) {
      // Periodic sequential sweeps pollute the buffer.
      key = "key" + std::to_string(scan_cursor++ % kKeys);
    } else {
      key = "key" + std::to_string(zipf.Next(&rnd));
    }
    tablet::CachedRecord rec;
    if (!buffer.Get(key, &rec)) {
      buffer.Put(key, tablet::CachedRecord{1, value});
    }
  }
  return static_cast<double>(buffer.hits()) /
         static_cast<double>(buffer.hits() + buffer.misses());
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  PrintHeader("Micro: read buffer",
              "Replacement strategy hit rates (§3.6.2 pluggable policy)");
  std::printf("%-10s %18s %20s\n", "policy", "zipfian hit-rate",
              "zipfian+scan hit-rate");
  std::printf("%-10s %17.1f%% %19.1f%%\n", "lru",
              RunTrace(tablet::MakeLruPolicy(), false) * 100,
              RunTrace(tablet::MakeLruPolicy(), true) * 100);
  std::printf("%-10s %17.1f%% %19.1f%%\n", "fifo",
              RunTrace(tablet::MakeFifoPolicy(), false) * 100,
              RunTrace(tablet::MakeFifoPolicy(), true) * 100);
  PrintComponentBreakdown();
  PrintPaperClaim(
      "the read buffer's replacement strategy is an abstracted interface "
      "(LRU by default) so applications can plug in policies fitting their "
      "access patterns (§3.6.2); LRU keeps the zipfian hot set resident "
      "better than FIFO.");
  return 0;
}
