// Elasticity — zipfian YCSB hot spot on a 5-server cluster, before/after the
// elastic balancer converges. The skewed key choice concentrates traffic on
// one server; its FCFS disk/NIC queues grow while the cluster idles. The
// balancer splits the dominant tablet and migrates load off the hot server
// (live, over the shared log — no data copy); throughput and tail latency
// recover. Not a paper figure: LogBase §3.5 sketches log-based migration,
// this measures it.

#include <algorithm>
#include <memory>
#include <vector>

#include "bench/common.h"

using namespace logbase;
using namespace logbase::bench;

namespace {

constexpr const char* kTable = "ycsb";
constexpr int kNodes = 5;
constexpr int kRanges = 10;

std::string KeyAt(uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "user%08llu",
                static_cast<unsigned long long>(index));
  return buf;
}

struct Phase {
  double seconds = 0;
  uint64_t ops = 0;
  uint64_t failed = 0;
  double throughput = 0;
  Histogram latency_us;
  std::vector<uint64_t> per_server;
  double imbalance = 0;  // max/mean of per-server served ops
};

/// Drains every server's load window; returns served ops per server.
std::vector<uint64_t> DrainPerServerOps(cluster::MiniCluster* cluster) {
  std::vector<uint64_t> ops(kNodes, 0);
  for (int node = 0; node < kNodes; node++) {
    balance::LoadReport report = cluster->server(node)->CollectLoadReport();
    for (const balance::TabletLoad& t : report.tablets) ops[node] += t.ops();
  }
  return ops;
}

double Imbalance(const std::vector<uint64_t>& per_server) {
  uint64_t total = 0, max_ops = 0;
  for (uint64_t n : per_server) {
    total += n;
    max_ops = std::max(max_ops, n);
  }
  if (total == 0) return 0;
  return static_cast<double>(max_ops) * kNodes / static_cast<double>(total);
}

/// One closed-loop round-robin pass: one zipfian op per client per round so
/// the clients' requests interleave on the FCFS resources (bench driver
/// idiom), 50/50 read/update.
Phase RunOps(std::vector<std::unique_ptr<client::LogBaseClient>>* clients,
             ZipfianGenerator* zipf, std::vector<Random>* rngs,
             uint64_t ops_per_client, const std::string& value) {
  Phase phase;
  const int n = static_cast<int>(clients->size());
  std::vector<sim::SimContext> ctxs(n);
  for (uint64_t round = 0; round < ops_per_client; round++) {
    for (int c = 0; c < n; c++) {
      sim::SimContext::Scope scope(&ctxs[c]);
      Random* rnd = &(*rngs)[c];
      std::string key = KeyAt(zipf->Next(rnd));
      sim::VirtualTime start = ctxs[c].now();
      Status s;
      if (rnd->Bernoulli(0.5)) {
        s = (*clients)[c]->Put(kTable, 0, key, value, {});
      } else {
        s = (*clients)[c]->Get(kTable, 0, key, client::ReadOptions{}).status();
      }
      if (s.ok()) {
        phase.latency_us.Add(static_cast<double>(ctxs[c].now() - start));
      } else {
        phase.failed++;
      }
      phase.ops++;
    }
  }
  for (const sim::SimContext& ctx : ctxs) {
    phase.seconds = std::max(phase.seconds, ctx.now() / 1e6);
  }
  if (phase.seconds > 0) {
    phase.throughput = static_cast<double>(phase.ops) / phase.seconds;
  }
  return phase;
}

void PrintPhase(const char* label, const Phase& phase) {
  std::printf("%-26s %9.0f ops/s  p50=%7.0fus  p99=%7.0fus  failed=%llu\n",
              label, phase.throughput, phase.latency_us.Percentile(50),
              phase.latency_us.Percentile(99),
              static_cast<unsigned long long>(phase.failed));
  std::printf("%-26s per-server ops [", "");
  for (int i = 0; i < kNodes; i++) {
    std::printf("%s%llu", i == 0 ? "" : " ",
                static_cast<unsigned long long>(phase.per_server[i]));
  }
  std::printf("]  imbalance=%.2fx\n", phase.imbalance);
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  PrintHeader("Elasticity", "Zipfian hot spot, before/after the elastic "
                            "balancer (5 servers)");
  const uint64_t records = Scaled(20000);
  const uint64_t ops_per_client = Scaled(20000);
  std::printf("records: %llu, ops/client: %llu x %d clients, zipf 0.99 over "
              "ordered keys (hot head -> one hot tablet)\n",
              static_cast<unsigned long long>(records),
              static_cast<unsigned long long>(ops_per_client), kNodes);

  cluster::MiniClusterOptions options;
  options.num_nodes = kNodes;
  options.server_template.segment_bytes = 4 << 20;
  cluster::MiniCluster cluster(options);
  if (!cluster.Start().ok()) std::abort();
  std::vector<std::string> splits;
  for (int i = 1; i < kRanges; i++) {
    splits.push_back(KeyAt(records * i / kRanges));
  }
  if (!cluster.master()->CreateTable(kTable, {"v"}, {{"v"}}, splits).ok()) {
    std::abort();
  }

  std::vector<std::unique_ptr<client::LogBaseClient>> clients;
  std::vector<Random> rngs;
  for (int i = 0; i < kNodes; i++) {
    clients.push_back(cluster.NewClient(i));
    rngs.emplace_back(0xE1A5 + i);
  }
  const std::string value(1024, 'v');

  // Load all records (uniform), then zero the load windows and queues.
  {
    sim::SimContext load_ctx;
    sim::SimContext::Scope scope(&load_ctx);
    for (uint64_t i = 0; i < records; i++) {
      if (!clients[i % kNodes]->Put(kTable, 0, KeyAt(i), value, {}).ok()) {
        std::abort();
      }
    }
  }
  (void)DrainPerServerOps(&cluster);

  ZipfianGenerator zipf(records, 0.99);

  // -- Phase A: skewed load, balancer off ---------------------------------
  ResetCosts(cluster.dfs(), cluster.network());
  Phase before = RunOps(&clients, &zipf, &rngs, ops_per_client, value);
  before.per_server = DrainPerServerOps(&cluster);
  before.imbalance = Imbalance(before.per_server);

  // -- Balancer convergence: tick until a round changes nothing -----------
  int ticks = 0;
  uint64_t last_actions = ~0ull;
  for (int round = 0; round < 16; round++) {
    // Fresh traffic so each tick sees a live load window.
    (void)RunOps(&clients, &zipf, &rngs, ops_per_client / 8, value);
    if (!cluster.balancer()->Tick().ok()) break;
    ticks++;
    const balance::BalancerStats stats = cluster.balancer()->stats();
    const uint64_t actions = stats.migrations + stats.splits;
    if (actions == last_actions) break;
    last_actions = actions;
  }
  const balance::BalancerStats stats = cluster.balancer()->stats();
  std::printf("balancer: converged after %d ticks (%llu migrations, %llu "
              "splits, %llu failed)\n",
              ticks, static_cast<unsigned long long>(stats.migrations),
              static_cast<unsigned long long>(stats.splits),
              static_cast<unsigned long long>(stats.failures));

  // -- Phase B: same skewed load, placement rebalanced --------------------
  (void)DrainPerServerOps(&cluster);
  ResetCosts(cluster.dfs(), cluster.network());
  Phase after = RunOps(&clients, &zipf, &rngs, ops_per_client, value);
  after.per_server = DrainPerServerOps(&cluster);
  after.imbalance = Imbalance(after.per_server);

  PrintPhase("before balance:", before);
  PrintPhase("after balance:", after);
  std::printf("throughput gain: %.2fx, p99 %.0fus -> %.0fus, imbalance "
              "%.2fx -> %.2fx\n",
              after.throughput / before.throughput,
              before.latency_us.Percentile(99), after.latency_us.Percentile(99),
              before.imbalance, after.imbalance);
  PrintComponentBreakdown();

  BenchResult result("elastic_skew");
  result.Set("records", static_cast<double>(records));
  result.Set("clients", kNodes);
  auto add_phase = [&result](const char* label, const Phase& phase) {
    result.AddRow("phases", label,
                  {{"throughput_ops", phase.throughput},
                   {"p50_us", phase.latency_us.Percentile(50)},
                   {"p99_us", phase.latency_us.Percentile(99)},
                   {"failed", static_cast<double>(phase.failed)},
                   {"imbalance", phase.imbalance}});
  };
  add_phase("before", before);
  add_phase("after", after);
  result.Set("migrations", static_cast<double>(stats.migrations));
  result.Set("splits", static_cast<double>(stats.splits));
  result.Set("throughput_gain", after.throughput / before.throughput);
  result.WriteFile();
  PrintPaperClaim(
      "LogBase migrates tablets by handing over log access and rebuilding "
      "in-memory indexes (§3.5/§3.8) — no data files move, so the system "
      "rebalances a skewed workload live; served load evens out and tail "
      "latency drops once the hot tablet is split and spread.");
  return 0;
}
