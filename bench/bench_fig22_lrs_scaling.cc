// Figure 22 — Read and write throughput scaling (3-24 nodes), LogBase vs
// LRS: both scale; LRS tracks LogBase closely on writes and trails a bit on
// reads.

#include "bench/common.h"
#include "bench/mixed_common.h"

using namespace logbase;
using namespace logbase::bench;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  PrintHeader("Figure 22",
              "Throughput scaling (ops/s), LogBase vs LRS, write-only and "
              "read-only");
  const uint64_t kOpsPerClient = 2000;
  std::printf("%6s %16s %12s %16s %12s\n", "nodes", "LogBase write",
              "LRS write", "LogBase read", "LRS read");
  for (int nodes : {3, 6, 12, 24}) {
    auto logbase_w =
        RunMixedExperiment(EngineKind::kLogBase, nodes, 1.0, kOpsPerClient);
    auto lrs_w =
        RunMixedExperiment(EngineKind::kLrs, nodes, 1.0, kOpsPerClient);
    auto logbase_r =
        RunMixedExperiment(EngineKind::kLogBase, nodes, 0.0, kOpsPerClient);
    auto lrs_r =
        RunMixedExperiment(EngineKind::kLrs, nodes, 0.0, kOpsPerClient);
    std::printf("%6d %16.0f %12.0f %16.0f %12.0f\n", nodes,
                logbase_w.run.throughput_ops_per_sec,
                lrs_w.run.throughput_ops_per_sec,
                logbase_r.run.throughput_ops_per_sec,
                lrs_r.run.throughput_ops_per_sec);
  }
  PrintComponentBreakdown();
  PrintPaperClaim(
      "LRS write and read throughput are only slightly below LogBase and "
      "both scale with the system size (Fig. 22): LogBase could adopt "
      "LSM-tree indexes to scale beyond memory without paying much "
      "throughput (§4.6 conclusion).");
  return 0;
}
