// Tests for the workload generators (YCSB, TPC-W), the closed-loop driver
// and the partitioners.

#include <gtest/gtest.h>

#include <set>

#include "src/cluster/mini_cluster.h"
#include "src/core/kv_engine.h"
#include "src/partition/range_partitioner.h"
#include "src/partition/vertical_partitioner.h"
#include "src/workload/driver.h"
#include "src/workload/tpcw.h"
#include "src/workload/ycsb.h"

namespace logbase::workload {
namespace {

TEST(YcsbTest, KeysAreDeterministicAndBounded) {
  YcsbOptions options;
  options.record_count = 100;
  YcsbWorkload w(options);
  std::set<std::string> keys;
  for (uint64_t i = 0; i < 100; i++) {
    std::string key = w.KeyAt(i);
    EXPECT_EQ(key, w.KeyAt(i));
    EXPECT_EQ(key.substr(0, 4), "user");
    keys.insert(key);
  }
  EXPECT_GT(keys.size(), 95u);  // hash collisions are rare
}

TEST(YcsbTest, ValueSizeIsExact) {
  YcsbOptions options;
  options.value_bytes = 1024;
  YcsbWorkload w(options);
  Random rnd(1);
  EXPECT_EQ(w.MakeValue(&rnd).size(), 1024u);
}

TEST(YcsbTest, MixProportionsApproximatelyHonored) {
  YcsbOptions options;
  options.record_count = 1000;
  options.update_proportion = 0.75;
  YcsbWorkload w(options);
  Random rnd(5);
  int updates = 0;
  const int kOps = 10000;
  for (int i = 0; i < kOps; i++) {
    auto op = w.NextOp(&rnd);
    if (op.type == YcsbWorkload::OpType::kUpdate) updates++;
  }
  EXPECT_NEAR(static_cast<double>(updates) / kOps, 0.75, 0.03);
}

TEST(YcsbTest, OpsDrawFromLoadedKeys) {
  YcsbOptions options;
  options.record_count = 50;
  YcsbWorkload w(options);
  std::set<std::string> loaded;
  for (uint64_t i = 0; i < 50; i++) loaded.insert(w.KeyAt(i));
  Random rnd(6);
  for (int i = 0; i < 500; i++) {
    EXPECT_TRUE(loaded.count(w.NextOp(&rnd).key) > 0);
  }
}

TEST(TpcwTest, MixesMatchPaperFractions) {
  EXPECT_DOUBLE_EQ(TpcwUpdateFraction(TpcwMix::kBrowsing), 0.05);
  EXPECT_DOUBLE_EQ(TpcwUpdateFraction(TpcwMix::kShopping), 0.20);
  EXPECT_DOUBLE_EQ(TpcwUpdateFraction(TpcwMix::kOrdering), 0.50);
}

TEST(TpcwTest, TxnShapes) {
  TpcwOptions options;
  TpcwWorkload w(options);
  Random rnd(7);
  int updates = 0;
  for (int i = 0; i < 4000; i++) {
    auto txn = w.NextTxn(&rnd, TpcwMix::kOrdering);
    if (txn.update) {
      updates++;
      EXPECT_TRUE(txn.item_key.empty());
      EXPECT_FALSE(txn.cart_key.empty());
      EXPECT_FALSE(txn.order_key.empty());
      // The order key shares the customer prefix with the cart key
      // (entity-group clustering keeps the txn single-server).
      EXPECT_EQ(txn.cart_key.substr(0, 14), txn.order_key.substr(0, 14));
    } else {
      EXPECT_FALSE(txn.item_key.empty());
    }
  }
  EXPECT_NEAR(updates / 4000.0, 0.5, 0.05);
}

TEST(TpcwTest, OrderKeysUnique) {
  TpcwWorkload w(TpcwOptions{});
  Random rnd(8);
  std::set<std::string> orders;
  for (int i = 0; i < 1000; i++) {
    auto txn = w.NextTxn(&rnd, TpcwMix::kOrdering);
    if (txn.update) {
      EXPECT_TRUE(orders.insert(txn.order_key).second);
    }
  }
}

// ---------------------------------------------------------------------------
// Partitioners
// ---------------------------------------------------------------------------

TEST(VerticalPartitionerTest, CoAccessedColumnsGroupTogether) {
  using partition::QueryTrace;
  using partition::VerticalPartitioner;
  // Two query classes: {a, b} together and {c} alone. Optimal grouping
  // separates c so queries on {a,b} never fetch c's bytes and vice versa.
  std::vector<std::string> columns{"a", "b", "c"};
  std::map<std::string, double> widths{{"a", 100}, {"b", 100}, {"c", 1000}};
  std::vector<QueryTrace> workload{{{"a", "b"}, 10.0}, {{"c"}, 10.0}};
  auto grouping = VerticalPartitioner::Partition(columns, widths, workload);
  ASSERT_EQ(grouping.size(), 2u);
  std::set<std::set<std::string>> got;
  for (const auto& group : grouping) {
    got.insert(std::set<std::string>(group.begin(), group.end()));
  }
  EXPECT_TRUE(got.count({"a", "b"}) == 1);
  EXPECT_TRUE(got.count({"c"}) == 1);
}

TEST(VerticalPartitionerTest, SingleQueryWorkloadMergesEverything) {
  using partition::QueryTrace;
  using partition::VerticalPartitioner;
  std::vector<std::string> columns{"a", "b", "c"};
  std::map<std::string, double> widths{{"a", 10}, {"b", 10}, {"c", 10}};
  std::vector<QueryTrace> workload{{{"a", "b", "c"}, 1.0}};
  auto grouping = VerticalPartitioner::Partition(columns, widths, workload);
  // All columns in one group: cost identical to any split, and exhaustive
  // search must not split without benefit... any grouping has equal cost
  // here, so just verify the cost is optimal.
  double cost = VerticalPartitioner::IoCost(grouping, widths, workload);
  EXPECT_DOUBLE_EQ(cost, 30.0);
}

TEST(VerticalPartitionerTest, GreedyMatchesExhaustiveOnSmallSchema) {
  using partition::QueryTrace;
  using partition::VerticalPartitioner;
  std::vector<std::string> columns{"a", "b", "c", "d"};
  std::map<std::string, double> widths{
      {"a", 50}, {"b", 200}, {"c", 10}, {"d", 500}};
  std::vector<QueryTrace> workload{
      {{"a", "c"}, 5.0}, {{"b"}, 3.0}, {{"d"}, 1.0}, {{"a", "b"}, 0.5}};
  partition::VerticalPartitionerOptions exhaustive;
  exhaustive.exhaustive_limit = 8;
  partition::VerticalPartitionerOptions greedy;
  greedy.exhaustive_limit = 0;
  double exhaustive_cost = VerticalPartitioner::IoCost(
      VerticalPartitioner::Partition(columns, widths, workload, exhaustive),
      widths, workload);
  double greedy_cost = VerticalPartitioner::IoCost(
      VerticalPartitioner::Partition(columns, widths, workload, greedy),
      widths, workload);
  EXPECT_LE(exhaustive_cost, greedy_cost);
  EXPECT_LE(greedy_cost, exhaustive_cost * 1.25);  // greedy is near-optimal
}

TEST(RangePartitionerTest, SplitPointsBalanceSample) {
  std::vector<std::string> sample;
  for (int i = 0; i < 1000; i++) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%04d", i);
    sample.push_back(key);
  }
  auto splits = partition::RangePartitioner::SplitPoints(sample, 4);
  ASSERT_EQ(splits.size(), 3u);
  EXPECT_EQ(splits[0], "k0250");
  EXPECT_EQ(splits[1], "k0500");
  EXPECT_EQ(splits[2], "k0750");
}

TEST(RangePartitionerTest, LocateRoutesKeys) {
  std::vector<std::string> splits{"g", "n", "t"};
  EXPECT_EQ(partition::RangePartitioner::Locate(splits, "a"), 0);
  EXPECT_EQ(partition::RangePartitioner::Locate(splits, "g"), 1);
  EXPECT_EQ(partition::RangePartitioner::Locate(splits, "m"), 1);
  EXPECT_EQ(partition::RangePartitioner::Locate(splits, "z"), 3);
}

// ---------------------------------------------------------------------------
// Closed-loop driver on a small real cluster
// ---------------------------------------------------------------------------

struct DriverFixture {
  dfs::Dfs dfs{[] {
    dfs::DfsOptions o;
    o.num_nodes = 3;
    return o;
  }()};
  sim::NetworkModel network{3};
  coord::CoordinationService coord;
  std::vector<std::unique_ptr<tablet::TabletServer>> servers;
  std::vector<std::unique_ptr<core::TabletServerEngine>> engines;
  EngineCluster cluster;

  DriverFixture() {
    for (int i = 0; i < 3; i++) {
      tablet::TabletServerOptions options;
      options.server_id = i;
      servers.push_back(
          std::make_unique<tablet::TabletServer>(options, &dfs, &coord));
      EXPECT_TRUE(servers.back()->Start().ok());
      tablet::TabletDescriptor d;
      d.table_id = 1;
      d.range_id = i;
      EXPECT_TRUE(servers.back()->OpenTablet(d).ok());
      engines.push_back(std::make_unique<core::TabletServerEngine>(
          servers.back().get(), "LogBase"));
      cluster.engines.push_back(engines.back().get());
    }
    cluster.route = HashRouter(3);
    cluster.tablet_uid = [](int node) {
      tablet::TabletDescriptor d;
      d.table_id = 1;
      d.range_id = node;
      return d.uid();
    };
    cluster.network = &network;
  }
};

TEST(DriverTest, LoadThenRunProducesSaneMetrics) {
  DriverFixture f;
  YcsbOptions options;
  options.record_count = 300;
  options.value_bytes = 128;
  YcsbWorkload workload(options);

  auto load = ClosedLoopDriver::Load(f.cluster, workload,
                                     /*records_per_node=*/100,
                                     /*batch_size=*/20);
  EXPECT_EQ(load.total_ops, 300u);
  EXPECT_EQ(load.failed_ops, 0u);
  EXPECT_GT(load.virtual_seconds, 0.0);

  auto run = ClosedLoopDriver::RunYcsb(f.cluster, &workload,
                                       /*ops_per_client=*/100);
  EXPECT_EQ(run.total_ops, 300u);
  EXPECT_EQ(run.failed_ops, 0u);
  EXPECT_GT(run.throughput_ops_per_sec, 0.0);
  EXPECT_GT(run.update_latency_us.num(), 0u);
  EXPECT_GT(run.read_latency_us.num(), 0u);
  // Closed loop: makespan at least sum of per-op latencies per client.
  EXPECT_GT(run.virtual_seconds, 0.0);
}

TEST(DriverTest, HashRouterCoversAllNodes) {
  auto route = HashRouter(4);
  std::set<int> seen;
  for (int i = 0; i < 200; i++) {
    int node = route("key" + std::to_string(i));
    ASSERT_GE(node, 0);
    ASSERT_LT(node, 4);
    seen.insert(node);
  }
  EXPECT_EQ(seen.size(), 4u);
}

}  // namespace
}  // namespace logbase::workload
