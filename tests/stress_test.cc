// Concurrency stress tests, written for the ThreadSanitizer preset
// (`cmake --preset tsan`). They hammer the components with real cross-thread
// contention — ThreadPool, the coordination lock table, and a tablet server
// serving writes, reads and checkpoints concurrently — so TSan sees the
// interesting interleavings and the ranked lock-order checker (on by
// default) observes every nested acquisition the system performs under
// load. They also run under the default preset as plain correctness tests.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/coord/coordination_service.h"
#include "src/coord/lock_manager.h"
#include "src/dfs/dfs.h"
#include "src/tablet/tablet_server.h"
#include "src/txn/lock_table.h"
#include "src/util/ordered_mutex.h"
#include "src/util/random.h"
#include "src/util/thread_pool.h"

namespace logbase {
namespace {

TEST(StressTest, ThreadPoolManySubmittersAndWaiters) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; t++) {
    submitters.emplace_back([&pool, &executed] {
      for (int i = 0; i < 500; i++) {
        pool.Submit([&executed] { executed++; });
      }
    });
  }
  for (auto& t : submitters) t.join();
  pool.Wait();
  EXPECT_EQ(executed.load(), 2000);
  EXPECT_EQ(HeldRankCount(), 0u);
}

TEST(StressTest, LockTableContendedAcquireRelease) {
  coord::CoordinationService coord;
  coord::LockManager locks(&coord);
  // 8 transactions repeatedly lock overlapping key sets through the ordered
  // lock table; key-order acquisition must stay deadlock-free and TSan must
  // see no races in the znode tree underneath.
  std::atomic<int> acquired{0};
  std::vector<std::thread> txns;
  for (int t = 0; t < 8; t++) {
    txns.emplace_back([&coord, &locks, &acquired, t] {
      coord::SessionId session = coord.CreateSession(t % 4);
      Random rnd(1000 + t);
      for (int round = 0; round < 40; round++) {
        std::vector<txn::TxnCell> cells;
        for (int k = 0; k < 3; k++) {
          cells.push_back(txn::TxnCell{
              "tablet", "key" + std::to_string(rnd.Uniform(6))});
        }
        txn::OrderedLockSet set(&locks, session, "txn" + std::to_string(t),
                                t % 4);
        if (set.AcquireAll(cells).ok()) acquired++;
        // ~OrderedLockSet releases everything.
      }
      coord.CloseSession(session);
    });
  }
  for (auto& t : txns) t.join();
  EXPECT_GT(acquired.load(), 0);
}

// Writers, historical readers, checkpoints and a compaction all running
// against one tablet server at once: the paper's in-memory-index +
// log-only-storage design must serve all four without a data race or a
// lock-order inversion.
TEST(StressTest, TabletServerConcurrentWriteReadCheckpoint) {
  dfs::DfsOptions dfs_options;
  dfs_options.num_nodes = 3;
  auto dfs = std::make_unique<dfs::Dfs>(dfs_options);
  coord::CoordinationService coord;
  tablet::TabletServerOptions options;
  options.segment_bytes = 1 << 14;  // small segments: force frequent rolls
  auto server =
      std::make_unique<tablet::TabletServer>(options, dfs.get(), &coord);
  ASSERT_TRUE(server->Start().ok());
  tablet::TabletDescriptor d;
  d.table_id = 1;
  d.column_group = 0;
  d.range_id = 0;
  const std::string uid = d.uid();
  ASSERT_TRUE(server->OpenTablet(d).ok());

  constexpr int kWriters = 3;
  constexpr int kWritesEach = 150;
  std::atomic<bool> stop{false};
  std::atomic<int> write_failures{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; w++) {
    threads.emplace_back([&server, &uid, &write_failures, w] {
      for (int i = 0; i < kWritesEach; i++) {
        std::string key = "k" + std::to_string((w * 7 + i) % 40);
        if (!server->Put(uid, key, "v" + std::to_string(i)).ok()) {
          write_failures++;
        }
      }
    });
  }
  threads.emplace_back([&server, &uid, &stop] {
    Random rnd(7);
    while (!stop.load()) {
      std::string key = "k" + std::to_string(rnd.Uniform(40));
      auto read = server->Get(uid, key);               // latest version
      if (read.ok()) {
        (void)server->GetAsOf(uid, key, read->timestamp);  // historical
        (void)server->GetVersions(uid, key);
      }
    }
  });
  threads.emplace_back([&server, &stop, &write_failures] {
    while (!stop.load()) {
      if (!server->Checkpoint().ok()) write_failures++;
      std::this_thread::yield();
    }
  });
  for (int w = 0; w < kWriters; w++) threads[w].join();
  stop.store(true);
  for (size_t i = kWriters; i < threads.size(); i++) threads[i].join();

  EXPECT_EQ(write_failures.load(), 0);
  tablet::CompactionStats stats;
  ASSERT_TRUE(server->CompactLog({}, &stats).ok());
  // Every key got at least one committed write; all must be readable.
  for (int k = 0; k < 40; k++) {
    EXPECT_TRUE(server->Get(uid, "k" + std::to_string(k)).ok()) << k;
  }
  ASSERT_TRUE(server->Stop().ok());
  EXPECT_EQ(HeldRankCount(), 0u);
}

// Flush/checkpoint racing a crash-restart cycle: recovery replays the tail
// correctly even when the pre-crash server was mid-checkpoint.
TEST(StressTest, CheckpointVersusWriterRecovery) {
  dfs::DfsOptions dfs_options;
  dfs_options.num_nodes = 3;
  auto dfs = std::make_unique<dfs::Dfs>(dfs_options);
  coord::CoordinationService coord;
  tablet::TabletServerOptions options;
  options.segment_bytes = 1 << 14;
  auto server =
      std::make_unique<tablet::TabletServer>(options, dfs.get(), &coord);
  ASSERT_TRUE(server->Start().ok());
  tablet::TabletDescriptor d;
  d.table_id = 2;
  d.column_group = 0;
  d.range_id = 0;
  const std::string uid = d.uid();
  ASSERT_TRUE(server->OpenTablet(d).ok());

  std::atomic<bool> stop{false};
  std::thread checkpointer([&server, &stop] {
    while (!stop.load()) {
      (void)server->Checkpoint();  // racing the crash below by design
      std::this_thread::yield();
    }
  });
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(
        server->Put(uid, "key" + std::to_string(i % 25), "v" + std::to_string(i))
            .ok());
  }
  stop.store(true);
  checkpointer.join();
  server->Crash();
  ASSERT_TRUE(server->Start().ok());
  for (int k = 0; k < 25; k++) {
    auto read = server->Get(uid, "key" + std::to_string(k));
    ASSERT_TRUE(read.ok()) << k;
  }
  ASSERT_TRUE(server->Stop().ok());
}

}  // namespace
}  // namespace logbase
