// Invariant-checked chaos runs: each test drives the nemesis with one named
// fault schedule, runs it twice, and asserts (a) all four invariants hold
// and (b) the two runs replay bit-identically (same delivered schedule,
// same final-table digest).

#include <gtest/gtest.h>

#include "src/fault/nemesis.h"

namespace logbase {
namespace {

using fault::FaultPlan;
using fault::NemesisOptions;
using fault::NemesisReport;
using fault::RunNemesis;

void RunTwiceAndCheck(const NemesisOptions& options, const FaultPlan& plan) {
  auto first = RunNemesis(options, plan);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(first->violations.empty()) << first->ToString();
  EXPECT_GT(first->faults_fired, 0);
  EXPECT_GT(first->ops_acked, 0);

  auto second = RunNemesis(options, plan);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second->violations.empty()) << second->ToString();
  EXPECT_EQ(first->schedule, second->schedule);
  EXPECT_EQ(first->table_digest, second->table_digest) << first->ToString();
  EXPECT_EQ(first->ops_acked, second->ops_acked);
}

NemesisOptions BaseOptions(uint64_t seed) {
  NemesisOptions options;
  options.num_nodes = 5;
  options.num_masters = 2;
  options.seed = seed;
  options.rounds = 250;
  return options;
}

TEST(NemesisTest, CrashDuringWrite) {
  // A tablet server dies in the middle of the write window and comes back;
  // acked writes must survive the crash + adoption + restart churn.
  FaultPlan plan;
  plan.Crash(60 * 1000, 2)
      .Restart(200 * 1000, 2)
      .Crash(350 * 1000, 1)
      .Restart(500 * 1000, 1);
  RunTwiceAndCheck(BaseOptions(101), plan);
}

TEST(NemesisTest, KillDuringCheckpoint) {
  // A whole machine (server + data node) dies permanently while writes are
  // flowing; its tablets are adopted and its blocks re-replicated.
  FaultPlan plan;
  plan.DiskStall(50 * 1000, 3, 3000)  // slow its disk first: mid-I/O death
      .Kill(120 * 1000, 3)
      .Crash(300 * 1000, 1)
      .Restart(420 * 1000, 1);
  RunTwiceAndCheck(BaseOptions(202), plan);
}

TEST(NemesisTest, PartitionDuringCommit) {
  // The client's home node loses links to two servers across the commit
  // window; retries must ride it out and no acked commit may be lost.
  FaultPlan plan;
  plan.PartitionNodes(80 * 1000, 1, 2)
      .PartitionNodes(90 * 1000, 1, 3)
      .RpcDelay(100 * 1000, 500)
      .Heal(300 * 1000)
      .ClearRpcFaults(310 * 1000)
      .PartitionRacks(400 * 1000, 0, 1)
      .Heal(520 * 1000);
  RunTwiceAndCheck(BaseOptions(303), plan);
}

TEST(NemesisTest, DiskStallDuringCompaction) {
  // Disks stall and spit IOErrors under load; the write pipeline and the
  // retry layer must mask them without losing acked data.
  FaultPlan plan;
  plan.DiskStall(70 * 1000, 0, 8000)
      .DiskErrors(100 * 1000, 2, 3)
      .MetaErrors(150 * 1000, 2)
      .DiskClear(260 * 1000, 0)
      .DiskStall(350 * 1000, 4, 5000)
      .DiskClear(480 * 1000, 4);
  RunTwiceAndCheck(BaseOptions(404), plan);
}

TEST(NemesisTest, MasterKillDuringDdl) {
  // The active master dies while DDL and assignment churn are in flight;
  // the standby must win the election, recover persisted metadata, and the
  // cluster must end with exactly one active master.
  NemesisOptions options = BaseOptions(505);
  options.ddl_every = 40;  // more DDL pressure than the default
  FaultPlan plan;
  plan.CrashMaster(110 * 1000, 0)
      .Crash(200 * 1000, 2)
      .Restart(330 * 1000, 2)
      .RestartMaster(450 * 1000, 0);
  RunTwiceAndCheck(options, plan);
}

TEST(NemesisTest, BalancerRacesFaultsDeterministically) {
  // The elastic balancer migrates and splits tablets while servers and the
  // active master crash around it. I5 (ownership integrity) must hold after
  // heal — every assigned tablet exactly one live unsealed owner, no
  // orphans — and the whole run, balancer decisions included, must replay
  // bit-identically for the same (plan, seed).
  NemesisOptions options = BaseOptions(707);
  options.enable_balancer = true;
  options.balance_every = 15;
  FaultPlan plan;
  plan.Crash(90 * 1000, 2)
      .CrashMaster(180 * 1000, 0)
      .Restart(260 * 1000, 2)
      .Crash(400 * 1000, 3)
      .RestartMaster(480 * 1000, 0)
      .Restart(560 * 1000, 3);

  auto first = RunNemesis(options, plan);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(first->violations.empty()) << first->ToString();
  EXPECT_GT(first->faults_fired, 0);
  EXPECT_GT(first->ops_acked, 0);
  // The balancer must have actually acted for this to test anything.
  EXPECT_GT(first->balancer_migrations + first->balancer_splits, 0);

  auto second = RunNemesis(options, plan);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second->violations.empty()) << second->ToString();
  EXPECT_EQ(first->schedule, second->schedule);
  EXPECT_EQ(first->table_digest, second->table_digest) << first->ToString();
  EXPECT_EQ(first->ops_acked, second->ops_acked);
  EXPECT_EQ(first->balancer_migrations, second->balancer_migrations);
  EXPECT_EQ(first->balancer_splits, second->balancer_splits);
}

TEST(NemesisTest, StragglerReplicaDuringGroupCommit) {
  // A log replica's disk stalls mid-group-commit (quorum acks keep commits
  // flowing past the straggler), then the same machine crashes outright —
  // the log tail is quorum-durable but missing on one replica. After
  // restart the heal sweep must catch the stale copy up; no acked write
  // may be lost (I1) and the whole run must replay bit-identically.
  FaultPlan plan;
  plan.DiskStall(60 * 1000, 4, 20000)
      .Crash(150 * 1000, 4)
      .Restart(320 * 1000, 4)
      .DiskClear(330 * 1000, 4);
  RunTwiceAndCheck(BaseOptions(808), plan);
}

TEST(NemesisTest, SeededRandomPlanHoldsInvariants) {
  // A generated schedule (the fuzz entry point for future chaos tests).
  FaultPlan::RandomOptions ropts;
  ropts.num_nodes = 5;
  ropts.horizon_us = 550 * 1000;
  ropts.num_faults = 5;
  FaultPlan plan = FaultPlan::Random(0xC4405, ropts);
  RunTwiceAndCheck(BaseOptions(606), plan);
}

}  // namespace
}  // namespace logbase
