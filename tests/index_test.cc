// Tests for the multiversion index: composite key codec, the B-link tree
// (unit + randomized differential + concurrency), the LSM-backed index, and
// index checkpoint persistence. The differential suites run against both
// index kinds through the common interface.

#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "src/index/blink_tree.h"
#include "src/index/composite_key.h"
#include "src/index/index_checkpoint.h"
#include "src/index/lsm_index.h"
#include "src/util/io.h"
#include "src/util/random.h"

namespace logbase::index {
namespace {

log::LogPtr Ptr(uint32_t segment, uint64_t offset) {
  return log::LogPtr{0, segment, offset, 100};
}

// ---------------------------------------------------------------------------
// Composite key codec
// ---------------------------------------------------------------------------

TEST(CompositeKeyTest, RoundTrip) {
  std::string encoded = EncodeCompositeKey("user5", 42);
  std::string key;
  uint64_t ts;
  ASSERT_TRUE(DecodeCompositeKey(Slice(encoded), &key, &ts));
  EXPECT_EQ(key, "user5");
  EXPECT_EQ(ts, 42u);
}

TEST(CompositeKeyTest, RoundTripWithEmbeddedZeros) {
  std::string weird("a\0b\0\0c", 6);
  std::string encoded = EncodeCompositeKey(Slice(weird), 7);
  std::string key;
  uint64_t ts;
  ASSERT_TRUE(DecodeCompositeKey(Slice(encoded), &key, &ts));
  EXPECT_EQ(key, weird);
  EXPECT_EQ(ts, 7u);
}

TEST(CompositeKeyTest, OrderKeyAscThenTimestampDesc) {
  // Same key: larger timestamp encodes smaller.
  EXPECT_LT(EncodeCompositeKey("k", 10), EncodeCompositeKey("k", 5));
  // Key dominates.
  EXPECT_LT(EncodeCompositeKey("a", 1), EncodeCompositeKey("b", 100));
  // Prefix keys order correctly despite the terminator.
  EXPECT_LT(EncodeCompositeKey("ab", 1), EncodeCompositeKey("ab0", 1));
}

TEST(CompositeKeyTest, PropertyOrderPreserved) {
  Random rnd(55);
  for (int i = 0; i < 300; i++) {
    std::string k1(rnd.Uniform(8) + 1, static_cast<char>('a' + rnd.Uniform(4)));
    std::string k2(rnd.Uniform(8) + 1, static_cast<char>('a' + rnd.Uniform(4)));
    uint64_t t1 = rnd.Uniform(1000), t2 = rnd.Uniform(1000);
    int want = k1 != k2 ? (k1 < k2 ? -1 : 1) : (t1 > t2 ? -1 : (t1 < t2 ? 1 : 0));
    int got = Slice(EncodeCompositeKey(k1, t1))
                  .compare(Slice(EncodeCompositeKey(k2, t2)));
    got = got < 0 ? -1 : (got > 0 ? 1 : 0);
    EXPECT_EQ(got, want) << k1 << "@" << t1 << " vs " << k2 << "@" << t2;
  }
}

// ---------------------------------------------------------------------------
// Index interface conformance: parameterized over both implementations.
// ---------------------------------------------------------------------------

enum class Impl { kBlink, kLsm };

class IndexFixture {
 public:
  explicit IndexFixture(Impl impl) {
    if (impl == Impl::kBlink) {
      index_ = std::make_unique<BlinkTree>();
    } else {
      lsm::LsmOptions options;
      options.memtable_bytes = 4096;
      options.table.block_size = 512;
      auto opened = LsmIndex::Open(options, &fs_, "/idx");
      EXPECT_TRUE(opened.ok());
      index_ = std::move(*opened);
    }
  }

  MultiVersionIndex* index() { return index_.get(); }

 private:
  MemFileSystem fs_;
  std::unique_ptr<MultiVersionIndex> index_;
};

class MultiVersionIndexTest : public ::testing::TestWithParam<Impl> {};

INSTANTIATE_TEST_SUITE_P(Impls, MultiVersionIndexTest,
                         ::testing::Values(Impl::kBlink, Impl::kLsm),
                         [](const auto& info) {
                           return info.param == Impl::kBlink ? "Blink" : "Lsm";
                         });

TEST_P(MultiVersionIndexTest, InsertAndGetLatest) {
  IndexFixture f(GetParam());
  ASSERT_TRUE(f.index()->Insert("k", 1, Ptr(1, 10)).ok());
  ASSERT_TRUE(f.index()->Insert("k", 5, Ptr(1, 50)).ok());
  ASSERT_TRUE(f.index()->Insert("k", 3, Ptr(1, 30)).ok());
  auto latest = f.index()->GetLatest("k");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->timestamp, 5u);
  EXPECT_EQ(latest->ptr.offset, 50u);
}

TEST_P(MultiVersionIndexTest, GetAsOfPicksNewestVisible) {
  IndexFixture f(GetParam());
  for (uint64_t ts : {10u, 20u, 30u}) {
    ASSERT_TRUE(f.index()->Insert("k", ts, Ptr(1, ts)).ok());
  }
  EXPECT_EQ(f.index()->GetAsOf("k", 25)->timestamp, 20u);
  EXPECT_EQ(f.index()->GetAsOf("k", 30)->timestamp, 30u);
  EXPECT_EQ(f.index()->GetAsOf("k", 1000)->timestamp, 30u);
  EXPECT_TRUE(f.index()->GetAsOf("k", 5).status().IsNotFound());
}

TEST_P(MultiVersionIndexTest, MissingKeyNotFound) {
  IndexFixture f(GetParam());
  ASSERT_TRUE(f.index()->Insert("exists", 1, Ptr(1, 1)).ok());
  EXPECT_TRUE(f.index()->GetLatest("missing").status().IsNotFound());
  EXPECT_TRUE(f.index()->GetLatest("exist").status().IsNotFound());
  EXPECT_TRUE(f.index()->GetLatest("existsX").status().IsNotFound());
}

TEST_P(MultiVersionIndexTest, GetAllVersionsNewestFirst) {
  IndexFixture f(GetParam());
  for (uint64_t ts : {3u, 1u, 2u}) {
    ASSERT_TRUE(f.index()->Insert("k", ts, Ptr(1, ts)).ok());
  }
  auto versions = f.index()->GetAllVersions("k");
  ASSERT_EQ(versions.size(), 3u);
  EXPECT_EQ(versions[0].timestamp, 3u);
  EXPECT_EQ(versions[1].timestamp, 2u);
  EXPECT_EQ(versions[2].timestamp, 1u);
}

TEST_P(MultiVersionIndexTest, RemoveAllVersions) {
  IndexFixture f(GetParam());
  for (uint64_t ts : {1u, 2u, 3u}) {
    ASSERT_TRUE(f.index()->Insert("doomed", ts, Ptr(1, ts)).ok());
    ASSERT_TRUE(f.index()->Insert("keeper", ts, Ptr(2, ts)).ok());
  }
  ASSERT_TRUE(f.index()->RemoveAllVersions("doomed").ok());
  EXPECT_TRUE(f.index()->GetLatest("doomed").status().IsNotFound());
  EXPECT_TRUE(f.index()->GetAllVersions("doomed").empty());
  EXPECT_TRUE(f.index()->GetLatest("keeper").ok());
}

TEST_P(MultiVersionIndexTest, UpsertReplacesPointer) {
  IndexFixture f(GetParam());
  ASSERT_TRUE(f.index()->Insert("k", 7, Ptr(1, 100)).ok());
  ASSERT_TRUE(f.index()->Insert("k", 7, Ptr(2, 200)).ok());
  auto entry = f.index()->GetLatest("k");
  EXPECT_EQ(entry->ptr.segment, 2u);
  EXPECT_EQ(f.index()->GetAllVersions("k").size(), 1u);
}

TEST_P(MultiVersionIndexTest, UpdateIfPresentSemantics) {
  IndexFixture f(GetParam());
  ASSERT_TRUE(f.index()->Insert("k", 7, Ptr(1, 100)).ok());
  ASSERT_TRUE(f.index()->UpdateIfPresent("k", 7, Ptr(9, 900)).ok());
  EXPECT_EQ(f.index()->GetLatest("k")->ptr.segment, 9u);
  // Absent version: must NOT create an entry.
  EXPECT_TRUE(f.index()->UpdateIfPresent("k", 8, Ptr(9, 901)).IsNotFound());
  EXPECT_TRUE(
      f.index()->UpdateIfPresent("other", 7, Ptr(9, 902)).IsNotFound());
  EXPECT_EQ(f.index()->GetAllVersions("k").size(), 1u);
  EXPECT_TRUE(f.index()->GetLatest("other").status().IsNotFound());
}

TEST_P(MultiVersionIndexTest, ScanRangeLatestPerKey) {
  IndexFixture f(GetParam());
  for (int i = 0; i < 20; i++) {
    std::string key = "key" + std::string(1, 'a' + i);
    ASSERT_TRUE(f.index()->Insert(key, 1, Ptr(1, i)).ok());
    ASSERT_TRUE(f.index()->Insert(key, 2, Ptr(2, i)).ok());
  }
  auto rows = f.index()->ScanRange("keyc", "keyh", ~0ull);
  ASSERT_EQ(rows.size(), 5u);  // c, d, e, f, g
  EXPECT_EQ(rows[0].key, "keyc");
  EXPECT_EQ(rows[0].timestamp, 2u);
  EXPECT_EQ(rows[4].key, "keyg");
}

TEST_P(MultiVersionIndexTest, ScanRangeAsOfFiltersVersions) {
  IndexFixture f(GetParam());
  ASSERT_TRUE(f.index()->Insert("a", 10, Ptr(1, 1)).ok());
  ASSERT_TRUE(f.index()->Insert("b", 20, Ptr(1, 2)).ok());
  ASSERT_TRUE(f.index()->Insert("b", 5, Ptr(1, 3)).ok());
  auto rows = f.index()->ScanRange("", "", 15);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].key, "a");
  EXPECT_EQ(rows[0].timestamp, 10u);
  EXPECT_EQ(rows[1].key, "b");
  EXPECT_EQ(rows[1].timestamp, 5u);  // 20 not visible at 15
}

TEST_P(MultiVersionIndexTest, VisitAllOrdered) {
  IndexFixture f(GetParam());
  Random rnd(61);
  for (int i = 0; i < 300; i++) {
    std::string key = "k" + std::to_string(rnd.Uniform(50));
    ASSERT_TRUE(f.index()->Insert(key, rnd.Uniform(100) + 1, Ptr(1, i)).ok());
  }
  std::string last_key;
  uint64_t last_ts = 0;
  bool first = true;
  size_t visited = 0;
  f.index()->VisitAll([&](const IndexEntry& entry) {
    if (!first) {
      if (entry.key == last_key) {
        EXPECT_LT(entry.timestamp, last_ts);  // descending within a key
      } else {
        EXPECT_GT(entry.key, last_key);
      }
    }
    first = false;
    last_key = entry.key;
    last_ts = entry.timestamp;
    visited++;
  });
  EXPECT_EQ(visited, f.index()->num_entries());
}

TEST_P(MultiVersionIndexTest, LargeVolumeForcesStructureGrowth) {
  IndexFixture f(GetParam());
  const int kKeys = 3000;
  for (int i = 0; i < kKeys; i++) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%06d", i);
    ASSERT_TRUE(f.index()->Insert(key, 1, Ptr(1, i)).ok());
  }
  EXPECT_EQ(f.index()->num_entries(), static_cast<size_t>(kKeys));
  for (int i = 0; i < kKeys; i += 97) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%06d", i);
    auto entry = f.index()->GetLatest(key);
    ASSERT_TRUE(entry.ok()) << key;
    EXPECT_EQ(entry->ptr.offset, static_cast<uint64_t>(i));
  }
}

// Differential property test vs a std::map<(key,ts)> oracle.
class IndexDifferentialTest
    : public ::testing::TestWithParam<std::tuple<Impl, uint64_t>> {};

INSTANTIATE_TEST_SUITE_P(
    Cases, IndexDifferentialTest,
    ::testing::Combine(::testing::Values(Impl::kBlink, Impl::kLsm),
                       ::testing::Values(1ull, 77ull, 4242ull)));

TEST_P(IndexDifferentialTest, MatchesOracle) {
  IndexFixture f(std::get<0>(GetParam()));
  Random rnd(std::get<1>(GetParam()));
  // Oracle: (key, ts) -> offset, with key-major / ts-descending queries.
  std::map<std::string, std::map<uint64_t, uint64_t>> oracle;
  for (int step = 0; step < 4000; step++) {
    std::string key = "u" + std::to_string(rnd.Uniform(150));
    uint64_t action = rnd.Uniform(10);
    if (action < 6) {
      uint64_t ts = rnd.Uniform(500) + 1;
      uint64_t offset = static_cast<uint64_t>(step);
      ASSERT_TRUE(f.index()->Insert(key, ts, Ptr(1, offset)).ok());
      oracle[key][ts] = offset;
    } else if (action < 7) {
      ASSERT_TRUE(f.index()->RemoveAllVersions(key).ok());
      oracle.erase(key);
    } else {
      uint64_t as_of = rnd.Uniform(600);
      auto got = f.index()->GetAsOf(key, as_of);
      auto key_it = oracle.find(key);
      const std::pair<const uint64_t, uint64_t>* want = nullptr;
      if (key_it != oracle.end()) {
        for (auto it = key_it->second.rbegin(); it != key_it->second.rend();
             ++it) {
          if (it->first <= as_of) {
            want = &*it;
            break;
          }
        }
      }
      if (want == nullptr) {
        EXPECT_TRUE(got.status().IsNotFound()) << key << "@" << as_of;
      } else {
        ASSERT_TRUE(got.ok()) << key << "@" << as_of;
        EXPECT_EQ(got->timestamp, want->first);
        EXPECT_EQ(got->ptr.offset, want->second);
      }
    }
  }
  // Final: full scan matches oracle contents.
  size_t oracle_entries = 0;
  for (const auto& [k, versions] : oracle) oracle_entries += versions.size();
  EXPECT_EQ(f.index()->num_entries(), oracle_entries);
}

// ---------------------------------------------------------------------------
// B-link-tree-specific: structure growth and concurrency.
// ---------------------------------------------------------------------------

TEST(BlinkTreeTest, HeightGrowsWithVolume) {
  BlinkTree tree;
  EXPECT_EQ(tree.Height(), 1);
  for (int i = 0; i < 10000; i++) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%07d", i);
    ASSERT_TRUE(tree.Insert(key, 1, Ptr(1, i)).ok());
  }
  EXPECT_GE(tree.Height(), 3);
  EXPECT_EQ(tree.num_entries(), 10000u);
}

TEST(BlinkTreeTest, MemoryAccountingTracksEntries) {
  BlinkTree tree;
  ASSERT_TRUE(tree.Insert("abcdefgh", 1, Ptr(1, 1)).ok());
  size_t one = tree.ApproximateMemoryBytes();
  EXPECT_GT(one, 8u);
  ASSERT_TRUE(tree.Insert("abcdefgh", 2, Ptr(1, 2)).ok());
  EXPECT_GT(tree.ApproximateMemoryBytes(), one);
  ASSERT_TRUE(tree.RemoveAllVersions("abcdefgh").ok());
  EXPECT_EQ(tree.num_entries(), 0u);
}

TEST(BlinkTreeTest, ConcurrentInsertsAndReads) {
  BlinkTree tree;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&tree, t] {
      for (int i = 0; i < kPerThread; i++) {
        char key[24];
        std::snprintf(key, sizeof(key), "t%d-k%06d", t, i);
        ASSERT_TRUE(tree.Insert(key, 1, Ptr(t, i)).ok());
        if (i % 7 == 0) {
          auto entry = tree.GetLatest(key);
          ASSERT_TRUE(entry.ok());
          EXPECT_EQ(entry->ptr.offset, static_cast<uint64_t>(i));
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(tree.num_entries(),
            static_cast<size_t>(kThreads * kPerThread));
  // Every key present afterwards.
  Random rnd(5);
  for (int probe = 0; probe < 1000; probe++) {
    char key[24];
    std::snprintf(key, sizeof(key), "t%d-k%06d",
                  static_cast<int>(rnd.Uniform(kThreads)),
                  static_cast<int>(rnd.Uniform(kPerThread)));
    EXPECT_TRUE(tree.GetLatest(key).ok()) << key;
  }
}

TEST(BlinkTreeTest, ConcurrentReadersDuringSplits) {
  BlinkTree tree;
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int i = 0; i < 30000; i++) {
      char key[16];
      std::snprintf(key, sizeof(key), "w%07d", i);
      (void)tree.Insert(key, 1, Ptr(1, i));  // failure surfaces via scanner checks
    }
    done.store(true);
  });
  std::thread scanner([&] {
    while (!done.load()) {
      auto rows = tree.ScanRange("w0001000", "w0002000", ~0ull);
      // Whatever is seen must be sorted and in range.
      for (size_t i = 1; i < rows.size(); i++) {
        EXPECT_LT(rows[i - 1].key, rows[i].key);
      }
      if (!rows.empty()) {
        EXPECT_GE(rows.front().key, std::string("w0001000"));
        EXPECT_LT(rows.back().key, std::string("w0002000"));
      }
    }
  });
  writer.join();
  scanner.join();
  EXPECT_EQ(tree.ScanRange("w0001000", "w0002000", ~0ull).size(), 1000u);
}

// ---------------------------------------------------------------------------
// Index checkpoints
// ---------------------------------------------------------------------------

TEST(IndexCheckpointTest, PersistAndReload) {
  MemFileSystem fs;
  BlinkTree original;
  Random rnd(88);
  for (int i = 0; i < 2000; i++) {
    std::string key = "ck" + std::to_string(rnd.Uniform(400));
    ASSERT_TRUE(original.Insert(key, rnd.Uniform(50) + 1, Ptr(3, i)).ok());
  }
  ASSERT_TRUE(WriteIndexCheckpoint(&fs, "/ckpt.idx", original).ok());

  BlinkTree reloaded;
  ASSERT_TRUE(LoadIndexCheckpoint(&fs, "/ckpt.idx", &reloaded).ok());
  EXPECT_EQ(reloaded.num_entries(), original.num_entries());
  original.VisitAll([&reloaded](const IndexEntry& entry) {
    auto got = reloaded.GetAsOf(Slice(entry.key), entry.timestamp);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->timestamp, entry.timestamp);
    EXPECT_EQ(got->ptr, entry.ptr);
  });
}

TEST(IndexCheckpointTest, CrossImplementationReload) {
  // Checkpoint written from a B-link tree loads into an LSM index.
  MemFileSystem fs;
  BlinkTree original;
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(original.Insert("k" + std::to_string(i), 5, Ptr(1, i)).ok());
  }
  ASSERT_TRUE(WriteIndexCheckpoint(&fs, "/x.idx", original).ok());
  lsm::LsmOptions options;
  auto lsm_index = LsmIndex::Open(options, &fs, "/lsmidx");
  ASSERT_TRUE(lsm_index.ok());
  ASSERT_TRUE(LoadIndexCheckpoint(&fs, "/x.idx", lsm_index->get()).ok());
  EXPECT_EQ((*lsm_index)->GetLatest("k42")->ptr.offset, 42u);
}

TEST(IndexCheckpointTest, CorruptionRejected) {
  MemFileSystem fs;
  BlinkTree original;
  ASSERT_TRUE(original.Insert("k", 1, Ptr(1, 1)).ok());
  ASSERT_TRUE(WriteIndexCheckpoint(&fs, "/c.idx", original).ok());
  auto rf = fs.NewRandomAccessFile("/c.idx");
  auto bytes = (*rf)->Read(0, (*rf)->Size());
  (*bytes)[10] ^= 0x80;
  auto wf = fs.NewWritableFile("/c.idx");
  ASSERT_TRUE((*wf)->Append(*bytes).ok());
  BlinkTree reloaded;
  EXPECT_TRUE(LoadIndexCheckpoint(&fs, "/c.idx", &reloaded).IsCorruption());
}

TEST(IndexCheckpointTest, MissingFileIsNotFound) {
  MemFileSystem fs;
  BlinkTree index;
  EXPECT_TRUE(LoadIndexCheckpoint(&fs, "/absent", &index).IsNotFound());
}

}  // namespace
}  // namespace logbase::index
