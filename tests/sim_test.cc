// Tests for the virtual-time simulation substrate: FCFS resources, the disk
// cost model's sequential/random classification, the network model, and
// ambient context plumbing.

#include <gtest/gtest.h>

#include "src/sim/costs.h"
#include "src/sim/disk_model.h"
#include "src/sim/network_model.h"
#include "src/sim/resource.h"
#include "src/sim/sim_context.h"

namespace logbase::sim {
namespace {

TEST(SimContextTest, NoAmbientContextByDefault) {
  EXPECT_EQ(SimContext::Current(), nullptr);
  ChargeCpu(100);  // must be a harmless no-op
  EXPECT_EQ(CurrentVirtualTime(), 0);
}

TEST(SimContextTest, ScopeInstallsAndRestores) {
  SimContext ctx(5);
  {
    SimContext::Scope scope(&ctx);
    EXPECT_EQ(SimContext::Current(), &ctx);
    ChargeCpu(10);
    EXPECT_EQ(CurrentVirtualTime(), 15);
  }
  EXPECT_EQ(SimContext::Current(), nullptr);
}

TEST(SimContextTest, ScopesNest) {
  SimContext outer, inner;
  SimContext::Scope a(&outer);
  {
    SimContext::Scope b(&inner);
    EXPECT_EQ(SimContext::Current(), &inner);
  }
  EXPECT_EQ(SimContext::Current(), &outer);
}

TEST(SimContextTest, AdvanceToNeverMovesBackward) {
  SimContext ctx(100);
  ctx.AdvanceTo(50);
  EXPECT_EQ(ctx.now(), 100);
  ctx.AdvanceTo(150);
  EXPECT_EQ(ctx.now(), 150);
}

TEST(ResourceTest, FcfsSerializesRequests) {
  Resource r("disk");
  // Two requests arriving at t=0: the second queues behind the first.
  EXPECT_EQ(r.Acquire(0, 10), 10);
  EXPECT_EQ(r.Acquire(0, 10), 20);
  // A request arriving after the queue drained starts immediately.
  EXPECT_EQ(r.Acquire(100, 5), 105);
  EXPECT_EQ(r.total_busy_us(), 25);
}

TEST(ResourceTest, FillsIdleGapsBeforeFutureReservations) {
  Resource r("nic");
  // A multi-hop chain parks work in the resource's future; the idle gap
  // before it stays usable.
  EXPECT_EQ(r.Acquire(1000, 10), 1010);
  // An earlier-time request arriving later slips into the idle gap instead
  // of queueing behind the future reservation.
  EXPECT_EQ(r.Acquire(0, 100), 100);
  // A request too big for the remaining gap queues at the tail.
  EXPECT_EQ(r.Acquire(0, 901), 1911);
  // The rest of the gap still serves fitting requests.
  EXPECT_EQ(r.Acquire(200, 300), 500);
  EXPECT_EQ(r.total_busy_us(), 1311);
}

TEST(ResourceTest, ResetClearsState) {
  Resource r("x");
  r.Acquire(0, 50);
  r.Reset();
  EXPECT_EQ(r.free_at(), 0);
  EXPECT_EQ(r.total_busy_us(), 0);
}

TEST(DiskModelTest, SequentialAvoidsSeek) {
  DiskParams params;
  DiskModel disk("d", params);
  SimContext ctx;
  SimContext::Scope scope(&ctx);

  disk.Access(/*locus=*/1, /*offset=*/0, /*n=*/1000);
  VirtualTime first = ctx.now();
  // Contiguous continuation: no positioning cost.
  disk.Access(1, 1000, 1000);
  VirtualTime second = ctx.now() - first;
  EXPECT_GT(first, second);
  EXPECT_GE(first, params.seek_us);
  EXPECT_LT(second, params.seek_us);
}

TEST(DiskModelTest, RandomAccessPaysSeek) {
  DiskParams params;
  DiskModel disk("d", params);
  SimContext ctx;
  SimContext::Scope scope(&ctx);
  disk.Access(1, 0, 100);
  VirtualTime after_first = ctx.now();
  disk.Access(1, 500000, 100);  // jump within the same locus
  EXPECT_GE(ctx.now() - after_first, params.seek_us);
}

TEST(DiskModelTest, DifferentLocusPaysSeek) {
  DiskModel disk("d");
  SimContext ctx;
  SimContext::Scope scope(&ctx);
  disk.Access(1, 0, 100);
  VirtualTime t1 = ctx.now();
  disk.Access(2, 100, 100);  // different file
  EXPECT_GE(ctx.now() - t1, disk.params().seek_us);
}

TEST(DiskModelTest, TransferScalesWithBytes) {
  DiskModel disk("d");
  VirtualTime small = disk.AccessCost(9, 0, 4 << 10);
  DiskModel disk2("d2");
  VirtualTime large = disk2.AccessCost(9, 0, 64 << 20);
  EXPECT_GT(large, small);
  // 64 MiB at 100 MB/s is ~0.67 s of transfer plus one positioning delay.
  EXPECT_NEAR(static_cast<double>(large), 671088.0 + 12150.0, 15000.0);
}

TEST(DiskModelTest, NoContextNoCharge) {
  DiskModel disk("d");
  disk.Access(1, 0, 1 << 20);  // must not crash without a context
  EXPECT_EQ(disk.resource()->total_busy_us(), 0);
}

TEST(NetworkModelTest, LoopbackIsCheap) {
  NetworkModel net(2);
  SimContext ctx;
  SimContext::Scope scope(&ctx);
  net.Transfer(0, 0, 1 << 20);
  EXPECT_EQ(ctx.now(), net.params().loopback_us);
}

TEST(NetworkModelTest, RemoteTransferPaysOverheadAndBandwidth) {
  NetworkModel net(2);
  SimContext ctx;
  SimContext::Scope scope(&ctx);
  net.Transfer(0, 1, 117);  // ~1 us of wire time at 117 MB/s
  EXPECT_GE(ctx.now(), net.params().rpc_overhead_us);
  VirtualTime small = ctx.now();
  net.Transfer(0, 1, 117 * 1000000);  // ~1 s of wire time
  EXPECT_GT(ctx.now() - small, 1000000);
}

TEST(NetworkModelTest, NicContentionQueues) {
  NetworkModel net(3);
  SimContext a, b;
  {
    SimContext::Scope scope(&a);
    net.Transfer(0, 1, 117 * 100000);  // ~100 ms on node 0's NIC
  }
  {
    SimContext::Scope scope(&b);
    net.Transfer(0, 2, 117);  // queues behind the big send on NIC 0
  }
  EXPECT_GT(b.now(), 100000);
}

TEST(CostsTest, ConstantsAreSmallRelativeToIo) {
  EXPECT_LT(costs::kIndexLookupUs, 10);
  EXPECT_LT(costs::kCacheProbeUs, 10);
  DiskModel disk("d");
  EXPECT_GT(disk.params().seek_us, 100 * costs::kIndexLookupUs);
}

}  // namespace
}  // namespace logbase::sim
