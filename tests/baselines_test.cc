// Tests for the evaluation baselines: the HBase-like WAL+Data engine and
// LRS, plus a differential parity test running the same random workload
// against all three engines.

#include <gtest/gtest.h>

#include <map>

#include "src/baselines/hbase/hbase_memtable.h"
#include "src/baselines/hbase/hbase_server.h"
#include "src/baselines/lrs/lrs_server.h"
#include "src/core/kv_engine.h"
#include "src/util/random.h"

namespace logbase::baselines {
namespace {

// ---------------------------------------------------------------------------
// HBase memtable
// ---------------------------------------------------------------------------

TEST(HMemTableTest, VersionedGet) {
  hbase::HMemTable mem;
  mem.Add("k", 10, false, "v10");
  mem.Add("k", 20, false, "v20");
  bool is_delete;
  uint64_t ts;
  std::string value;
  ASSERT_TRUE(mem.Get("k", ~0ull, &is_delete, &ts, &value));
  EXPECT_FALSE(is_delete);
  EXPECT_EQ(ts, 20u);
  EXPECT_EQ(value, "v20");
  ASSERT_TRUE(mem.Get("k", 15, &is_delete, &ts, &value));
  EXPECT_EQ(value, "v10");
  EXPECT_FALSE(mem.Get("k", 5, &is_delete, &ts, &value));
  EXPECT_FALSE(mem.Get("other", ~0ull, &is_delete, &ts, &value));
}

TEST(HMemTableTest, TombstonesVisible) {
  hbase::HMemTable mem;
  mem.Add("k", 1, false, "v");
  mem.Add("k", 2, true, "");
  bool is_delete;
  uint64_t ts;
  std::string value;
  ASSERT_TRUE(mem.Get("k", ~0ull, &is_delete, &ts, &value));
  EXPECT_TRUE(is_delete);
}

TEST(HMemTableTest, CellCodec) {
  std::string cell = hbase::EncodeCell(false, "payload");
  bool is_delete;
  Slice value;
  ASSERT_TRUE(hbase::DecodeCell(Slice(cell), &is_delete, &value));
  EXPECT_FALSE(is_delete);
  EXPECT_EQ(value.ToString(), "payload");
  cell = hbase::EncodeCell(true, "");
  ASSERT_TRUE(hbase::DecodeCell(Slice(cell), &is_delete, &value));
  EXPECT_TRUE(is_delete);
}

// ---------------------------------------------------------------------------
// HBase server
// ---------------------------------------------------------------------------

struct HBaseFixture {
  dfs::Dfs dfs{[] {
    dfs::DfsOptions o;
    o.num_nodes = 3;
    return o;
  }()};
  coord::CoordinationService coord;
  std::unique_ptr<hbase::HBaseServer> server;

  explicit HBaseFixture(uint64_t flush_bytes = 1 << 16) {
    hbase::HBaseServerOptions options;
    options.memtable_flush_bytes = flush_bytes;
    options.block_cache_bytes = 1 << 20;
    options.segment_bytes = 1 << 20;
    server = std::make_unique<hbase::HBaseServer>(options, &dfs, &coord);
    EXPECT_TRUE(server->OpenTablet("t1").ok());
    EXPECT_TRUE(server->Start().ok());
  }
};

TEST(HBaseServerTest, PutGetDelete) {
  HBaseFixture f;
  ASSERT_TRUE(f.server->Put("t1", "k", "v").ok());
  EXPECT_EQ(f.server->Get("t1", "k")->value, "v");
  ASSERT_TRUE(f.server->Delete("t1", "k").ok());
  EXPECT_TRUE(f.server->Get("t1", "k").status().IsNotFound());
}

TEST(HBaseServerTest, FlushPersistsToStoreFiles) {
  HBaseFixture f;
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(f.server->Put("t1", "k" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(f.server->FlushAll().ok());
  auto* tablet = f.server->FindTablet("t1");
  EXPECT_GE(tablet->num_store_files(), 1);
  EXPECT_EQ(tablet->memtable_bytes(), 0u);
  for (int i = 0; i < 100; i++) {
    EXPECT_TRUE(f.server->Get("t1", "k" + std::to_string(i)).ok()) << i;
  }
}

TEST(HBaseServerTest, AutomaticFlushWhenMemtableFull) {
  HBaseFixture f(/*flush_bytes=*/4096);
  std::string big(512, 'x');
  for (int i = 0; i < 40; i++) {
    ASSERT_TRUE(f.server->Put("t1", "k" + std::to_string(i), big).ok());
  }
  EXPECT_GE(f.server->FindTablet("t1")->num_store_files(), 1);
  for (int i = 0; i < 40; i++) {
    EXPECT_TRUE(f.server->Get("t1", "k" + std::to_string(i)).ok());
  }
}

TEST(HBaseServerTest, ReadsCheckMultipleStoreFiles) {
  HBaseFixture f;
  ASSERT_TRUE(f.server->Put("t1", "old", "v1").ok());
  ASSERT_TRUE(f.server->FlushAll().ok());
  ASSERT_TRUE(f.server->Put("t1", "newer", "v2").ok());
  ASSERT_TRUE(f.server->FlushAll().ok());
  EXPECT_GE(f.server->FindTablet("t1")->num_store_files(), 2);
  EXPECT_TRUE(f.server->Get("t1", "old").ok());
  EXPECT_TRUE(f.server->Get("t1", "newer").ok());
}

TEST(HBaseServerTest, NewerStoreFileShadowsOlder) {
  HBaseFixture f;
  ASSERT_TRUE(f.server->Put("t1", "k", "old").ok());
  ASSERT_TRUE(f.server->FlushAll().ok());
  ASSERT_TRUE(f.server->Put("t1", "k", "new").ok());
  ASSERT_TRUE(f.server->FlushAll().ok());
  EXPECT_EQ(f.server->Get("t1", "k")->value, "new");
}

TEST(HBaseServerTest, CompactionMergesStoreFiles) {
  HBaseFixture f;
  for (int round = 0; round < 3; round++) {
    for (int i = 0; i < 20; i++) {
      ASSERT_TRUE(f.server->Put("t1", "k" + std::to_string(i),
                                "r" + std::to_string(round))
                      .ok());
    }
    ASSERT_TRUE(f.server->FlushAll().ok());
  }
  ASSERT_TRUE(f.server->CompactAll().ok());
  EXPECT_EQ(f.server->FindTablet("t1")->num_store_files(), 1);
  for (int i = 0; i < 20; i++) {
    EXPECT_EQ(f.server->Get("t1", "k" + std::to_string(i))->value, "r2");
  }
}

TEST(HBaseServerTest, CompactionDropsTombstonedHistory) {
  HBaseFixture f;
  ASSERT_TRUE(f.server->Put("t1", "dead", "v").ok());
  ASSERT_TRUE(f.server->FlushAll().ok());
  ASSERT_TRUE(f.server->Delete("t1", "dead").ok());
  ASSERT_TRUE(f.server->FlushAll().ok());
  uint64_t before = f.server->FindTablet("t1")->store_file_bytes();
  ASSERT_TRUE(f.server->CompactAll().ok());
  EXPECT_TRUE(f.server->Get("t1", "dead").status().IsNotFound());
  EXPECT_LT(f.server->FindTablet("t1")->store_file_bytes(), before);
}

TEST(HBaseServerTest, ScanMergesMemtableAndFiles) {
  HBaseFixture f;
  ASSERT_TRUE(f.server->Put("t1", "a", "1").ok());
  ASSERT_TRUE(f.server->FlushAll().ok());
  ASSERT_TRUE(f.server->Put("t1", "b", "2").ok());
  ASSERT_TRUE(f.server->Put("t1", "a", "1-updated").ok());
  auto rows = f.server->Scan("t1", "", "");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0].value, "1-updated");
  EXPECT_EQ((*rows)[1].value, "2");
}

TEST(HBaseServerTest, WalRecoveryAfterCrash) {
  HBaseFixture f;
  for (int i = 0; i < 30; i++) {
    ASSERT_TRUE(f.server->Put("t1", "k" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(f.server->FlushAll().ok());
  for (int i = 30; i < 50; i++) {
    ASSERT_TRUE(f.server->Put("t1", "k" + std::to_string(i), "v").ok());
  }
  f.server->Crash();  // memtable (k30..k49) lost, WAL survives
  ASSERT_TRUE(f.server->OpenTablet("t1").ok());
  ASSERT_TRUE(f.server->Start().ok());
  for (int i = 0; i < 50; i++) {
    EXPECT_TRUE(f.server->Get("t1", "k" + std::to_string(i)).ok()) << i;
  }
}

TEST(HBaseServerTest, DeleteDurableAcrossCrash) {
  HBaseFixture f;
  ASSERT_TRUE(f.server->Put("t1", "gone", "v").ok());
  ASSERT_TRUE(f.server->FlushAll().ok());
  ASSERT_TRUE(f.server->Delete("t1", "gone").ok());
  f.server->Crash();
  ASSERT_TRUE(f.server->OpenTablet("t1").ok());
  ASSERT_TRUE(f.server->Start().ok());
  EXPECT_TRUE(f.server->Get("t1", "gone").status().IsNotFound());
}

// ---------------------------------------------------------------------------
// LRS
// ---------------------------------------------------------------------------

TEST(LrsServerTest, IsTabletServerWithLsmIndex) {
  dfs::DfsOptions dfs_options;
  dfs_options.num_nodes = 3;
  dfs::Dfs dfs(dfs_options);
  coord::CoordinationService coord;
  lrs::LrsOptions options;
  auto server = lrs::NewLrsServer(options, &dfs, &coord, nullptr);
  EXPECT_EQ(server->options().index_kind, index::IndexKind::kLsm);
  ASSERT_TRUE(server->Start().ok());
  tablet::TabletDescriptor d;
  d.table_id = 1;
  ASSERT_TRUE(server->OpenTablet(d).ok());
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(server->Put(d.uid(), "k" + std::to_string(i), "v").ok());
  }
  for (int i = 0; i < 50; i++) {
    EXPECT_TRUE(server->Get(d.uid(), "k" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(server->Stop().ok());
}

// ---------------------------------------------------------------------------
// Differential parity: the same random op stream produces identical results
// on LogBase, HBase and LRS.
// ---------------------------------------------------------------------------

class EngineParityTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, EngineParityTest,
                         ::testing::Values(5ull, 1234ull));

TEST_P(EngineParityTest, AllEnginesAgreeWithOracle) {
  dfs::DfsOptions dfs_options;
  dfs_options.num_nodes = 3;
  dfs::Dfs dfs(dfs_options);
  coord::CoordinationService coord;

  // LogBase.
  tablet::TabletServerOptions lb_options;
  lb_options.server_id = 0;
  tablet::TabletServer logbase_server(lb_options, &dfs, &coord);
  ASSERT_TRUE(logbase_server.Start().ok());
  tablet::TabletDescriptor d;
  d.table_id = 1;
  ASSERT_TRUE(logbase_server.OpenTablet(d).ok());

  // HBase (separate machine id to keep DFS paths apart).
  hbase::HBaseServerOptions hb_options;
  hb_options.server_id = 1;
  hb_options.memtable_flush_bytes = 8192;  // force flushes mid-run
  hbase::HBaseServer hbase_server(hb_options, &dfs, &coord);
  ASSERT_TRUE(hbase_server.OpenTablet("t1.g0.r0").ok());
  ASSERT_TRUE(hbase_server.Start().ok());

  // LRS.
  lrs::LrsOptions lrs_options;
  lrs_options.server_id = 2;
  lrs_options.write_buffer_bytes = 8192;
  auto lrs_server = lrs::NewLrsServer(lrs_options, &dfs, &coord, nullptr);
  ASSERT_TRUE(lrs_server->Start().ok());
  ASSERT_TRUE(lrs_server->OpenTablet(d).ok());

  core::TabletServerEngine logbase_engine(&logbase_server, "LogBase");
  core::HBaseEngine hbase_engine(&hbase_server);
  core::TabletServerEngine lrs_engine(lrs_server.get(), "LRS");
  std::vector<core::KvEngine*> engines{&logbase_engine, &hbase_engine,
                                       &lrs_engine};

  std::map<std::string, std::string> oracle;
  Random rnd(GetParam());
  const std::string uid = "t1.g0.r0";
  for (int step = 0; step < 1500; step++) {
    std::string key = "key" + std::to_string(rnd.Uniform(80));
    uint64_t action = rnd.Uniform(10);
    if (action < 6) {
      std::string value = "v" + std::to_string(step);
      for (auto* engine : engines) {
        ASSERT_TRUE(engine->Put(uid, key, value).ok()) << engine->Name();
      }
      oracle[key] = value;
    } else if (action < 8) {
      for (auto* engine : engines) {
        ASSERT_TRUE(engine->Delete(uid, key).ok()) << engine->Name();
      }
      oracle.erase(key);
    } else {
      auto want = oracle.find(key);
      for (auto* engine : engines) {
        auto got = engine->Get(uid, key);
        if (want == oracle.end()) {
          EXPECT_TRUE(got.status().IsNotFound())
              << engine->Name() << " " << key;
        } else {
          ASSERT_TRUE(got.ok()) << engine->Name() << " " << key;
          EXPECT_EQ(got->value, want->second) << engine->Name() << " " << key;
        }
      }
    }
  }
  // Final scans agree with the oracle on every engine.
  for (auto* engine : engines) {
    auto rows = engine->Scan(uid, "", "");
    ASSERT_TRUE(rows.ok()) << engine->Name();
    ASSERT_EQ(rows->size(), oracle.size()) << engine->Name();
    auto want = oracle.begin();
    for (const auto& row : *rows) {
      EXPECT_EQ(row.key, want->first) << engine->Name();
      EXPECT_EQ(row.value, want->second) << engine->Name();
      ++want;
    }
  }
}

}  // namespace
}  // namespace logbase::baselines
