// Tests for the distributed file system: replication, rack-aware placement,
// block striping, failure handling and the FileSystem adapter.

#include <gtest/gtest.h>

#include <set>

#include "src/dfs/dfs.h"
#include "src/obs/metrics.h"
#include "src/sim/sim_context.h"
#include "src/util/random.h"

namespace logbase::dfs {
namespace {

DfsOptions SmallBlocks(int nodes = 3, uint64_t block = 1024) {
  DfsOptions options;
  options.num_nodes = nodes;
  options.block_size = block;
  options.nodes_per_rack = 2;
  return options;
}

TEST(DfsTest, CreateWriteRead) {
  Dfs dfs(SmallBlocks());
  auto wf = dfs.Create("/f", 0);
  ASSERT_TRUE(wf.ok());
  ASSERT_TRUE((*wf)->Append("hello dfs").ok());
  ASSERT_TRUE((*wf)->Sync().ok());
  auto rf = dfs.Open("/f", 1);
  ASSERT_TRUE(rf.ok());
  EXPECT_EQ(*(*rf)->Read(0, 9), "hello dfs");
  EXPECT_EQ((*rf)->Size(), 9u);
}

TEST(DfsTest, CreateFailsIfExists) {
  Dfs dfs(SmallBlocks());
  ASSERT_TRUE(dfs.Create("/f", 0).ok());
  EXPECT_FALSE(dfs.Create("/f", 0).ok());
}

TEST(DfsTest, OpenMissingFileFails) {
  Dfs dfs(SmallBlocks());
  EXPECT_TRUE(dfs.Open("/nope", 0).status().IsNotFound());
}

TEST(DfsTest, LargeAppendSpansBlocks) {
  Dfs dfs(SmallBlocks(3, 1000));
  auto wf = dfs.Create("/big", 0);
  std::string data(4500, 'z');
  ASSERT_TRUE((*wf)->Append(data).ok());
  ASSERT_TRUE((*wf)->Sync().ok());
  auto blocks = dfs.name_node()->GetBlocks("/big");
  ASSERT_TRUE(blocks.ok());
  EXPECT_EQ(blocks->size(), 5u);  // 4 full + 1 partial
  auto rf = dfs.Open("/big", 0);
  auto all = (*rf)->Read(0, 4500);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, data);
  // Cross-block read.
  EXPECT_EQ(*(*rf)->Read(950, 100), std::string(100, 'z'));
}

TEST(DfsTest, ThreeWayReplication) {
  Dfs dfs(SmallBlocks(5));
  auto wf = dfs.Create("/r", 0);
  ASSERT_TRUE((*wf)->Append("abc").ok());
  ASSERT_TRUE((*wf)->Sync().ok());
  auto blocks = dfs.name_node()->GetBlocks("/r");
  ASSERT_EQ(blocks->size(), 1u);
  EXPECT_EQ((*blocks)[0].replicas.size(), 3u);
  // Every replica node actually stores the bytes.
  for (int node : (*blocks)[0].replicas) {
    EXPECT_TRUE(dfs.data_node(node)->HasBlock((*blocks)[0].id));
  }
}

TEST(DfsTest, FirstReplicaIsWriterLocal) {
  Dfs dfs(SmallBlocks(5));
  auto wf = dfs.Create("/local", 3);
  ASSERT_TRUE((*wf)->Append("x").ok());
  ASSERT_TRUE((*wf)->Sync().ok());
  auto blocks = dfs.name_node()->GetBlocks("/local");
  EXPECT_EQ((*blocks)[0].replicas[0], 3);
}

TEST(DfsTest, RackAwarePlacement) {
  // 6 nodes, 2 per rack -> racks {0,0,1,1,2,2} with nodes_per_rack=2.
  Dfs dfs(SmallBlocks(6));
  for (int i = 0; i < 20; i++) {
    auto wf = dfs.Create("/f" + std::to_string(i), 0);
    ASSERT_TRUE((*wf)->Append("data").ok());
  ASSERT_TRUE((*wf)->Sync().ok());
    auto blocks = dfs.name_node()->GetBlocks("/f" + std::to_string(i));
    const std::vector<int>& replicas = (*blocks)[0].replicas;
    ASSERT_EQ(replicas.size(), 3u);
    auto rack = [](int node) { return node / 2; };
    // Replica 2 is off the writer's rack; replica 3 shares replica 2's rack.
    EXPECT_NE(rack(replicas[0]), rack(replicas[1]));
    EXPECT_EQ(rack(replicas[1]), rack(replicas[2]));
    EXPECT_NE(replicas[1], replicas[2]);
  }
}

TEST(DfsTest, ReadSurvivesTwoReplicaFailures) {
  Dfs dfs(SmallBlocks(4));
  auto wf = dfs.Create("/hardy", 0);
  ASSERT_TRUE((*wf)->Append("survives").ok());
  ASSERT_TRUE((*wf)->Sync().ok());
  auto blocks = dfs.name_node()->GetBlocks("/hardy");
  const std::vector<int>& replicas = (*blocks)[0].replicas;
  dfs.KillDataNode(replicas[0]);
  dfs.KillDataNode(replicas[1]);
  auto rf = dfs.Open("/hardy", replicas[0]);
  EXPECT_EQ(*(*rf)->Read(0, 8), "survives");
}

TEST(DfsTest, ReadFailsWhenAllReplicasDead) {
  Dfs dfs(SmallBlocks(3));
  auto wf = dfs.Create("/gone", 0);
  ASSERT_TRUE((*wf)->Append("lost").ok());
  ASSERT_TRUE((*wf)->Sync().ok());
  for (int i = 0; i < 3; i++) dfs.KillDataNode(i);
  auto rf = dfs.Open("/gone", 0);
  ASSERT_TRUE(rf.ok());  // metadata still there
  EXPECT_TRUE((*rf)->Read(0, 4).status().IsUnavailable());
}

TEST(DfsTest, WriteContinuesWithReducedPipeline) {
  Dfs dfs(SmallBlocks(3));
  dfs.KillDataNode(2);
  auto wf = dfs.Create("/reduced", 0);
  ASSERT_TRUE((*wf)->Append("still works").ok());
  ASSERT_TRUE((*wf)->Sync().ok());
  auto rf = dfs.Open("/reduced", 0);
  EXPECT_EQ(*(*rf)->Read(0, 11), "still works");
}

TEST(DfsTest, RereplicationRestoresCopies) {
  Dfs dfs(SmallBlocks(5));
  auto wf = dfs.Create("/heal", 0);
  ASSERT_TRUE((*wf)->Append("heal me").ok());
  ASSERT_TRUE((*wf)->Sync().ok());
  auto blocks = dfs.name_node()->GetBlocks("/heal");
  int victim = (*blocks)[0].replicas[0];
  dfs.KillDataNode(victim);
  auto copied = dfs.Rereplicate(victim);
  ASSERT_TRUE(copied.ok());
  EXPECT_EQ(*copied, 1);
  // Live replicas back to 3.
  blocks = dfs.name_node()->GetBlocks("/heal");
  int live = 0;
  for (int r : (*blocks)[0].replicas) {
    if (dfs.data_node(r)->alive() && dfs.data_node(r)->HasBlock((*blocks)[0].id)) {
      live++;
    }
  }
  EXPECT_GE(live, 3);
}

TEST(DfsTest, KillNodeRestoresReplicationOfEveryAffectedBlock) {
  Dfs dfs(SmallBlocks(6, 512));
  // Several multi-block files so the victim holds replicas of many blocks.
  for (int f = 0; f < 3; f++) {
    auto wf = dfs.Create("/kill" + std::to_string(f), f);
    ASSERT_TRUE((*wf)->Append(std::string(1800, 'a' + f)).ok());
    ASSERT_TRUE((*wf)->Sync().ok());
  }
  obs::Counter* recovered = obs::MetricsRegistry::Global().counter(
      "dfs.replication.recovered_blocks");
  uint64_t before = recovered->value();

  int victim = (*dfs.name_node()->GetBlocks("/kill0"))[0].replicas[0];
  dfs.KillDataNode(victim);
  auto copied = dfs.Rereplicate(victim);
  ASSERT_TRUE(copied.ok());
  EXPECT_GT(*copied, 0);

  // Every block of every file is back at full replication on live nodes.
  auto files = dfs.name_node()->List("");
  ASSERT_TRUE(files.ok());
  std::vector<bool> alive = dfs.AliveNodes();
  for (const std::string& path : *files) {
    auto blocks = dfs.name_node()->GetBlocks(path);
    ASSERT_TRUE(blocks.ok());
    for (const BlockInfo& block : *blocks) {
      int live = 0;
      for (int node = 0; node < dfs.num_nodes(); node++) {
        if (alive[node] && dfs.data_node(node)->HasBlock(block.id)) live++;
      }
      EXPECT_GE(live, 3) << path << " block " << block.id;
    }
  }
  EXPECT_EQ(recovered->value() - before, static_cast<uint64_t>(*copied));
}

TEST(DfsTest, NodeRestartServesOldBlocks) {
  Dfs dfs(SmallBlocks(3));
  auto wf = dfs.Create("/again", 0);
  ASSERT_TRUE((*wf)->Append("persisted").ok());
  ASSERT_TRUE((*wf)->Sync().ok());
  dfs.KillDataNode(0);
  dfs.RestartDataNode(0);
  auto rf = dfs.Open("/again", 0);
  EXPECT_EQ(*(*rf)->Read(0, 9), "persisted");
}

TEST(DfsTest, ConcurrentReaderSeesGrowingTail) {
  Dfs dfs(SmallBlocks(3, 100));
  auto wf = dfs.Create("/tail", 0);
  ASSERT_TRUE((*wf)->Append("first").ok());
  ASSERT_TRUE((*wf)->Sync().ok());
  auto rf = dfs.Open("/tail", 1);
  EXPECT_EQ(*(*rf)->Read(0, 5), "first");
  ASSERT_TRUE((*wf)->Append("second").ok());
  ASSERT_TRUE((*wf)->Sync().ok());
  EXPECT_EQ(*(*rf)->Read(5, 6), "second");
}

TEST(DfsTest, DeleteReclaimsBlocks) {
  Dfs dfs(SmallBlocks(3));
  auto wf = dfs.Create("/tmp", 0);
  ASSERT_TRUE((*wf)->Append("bytes").ok());
  ASSERT_TRUE((*wf)->Sync().ok());
  auto blocks = dfs.name_node()->GetBlocks("/tmp");
  BlockId id = (*blocks)[0].id;
  ASSERT_TRUE(dfs.Delete("/tmp").ok());
  EXPECT_FALSE(dfs.Exists("/tmp"));
  for (int i = 0; i < 3; i++) {
    EXPECT_FALSE(dfs.data_node(i)->HasBlock(id));
  }
}

TEST(DfsTest, RenameAndList) {
  Dfs dfs(SmallBlocks(3));
  ASSERT_TRUE(dfs.Create("/dir/a", 0).ok());
  ASSERT_TRUE(dfs.Create("/dir/b", 0).ok());
  ASSERT_TRUE(dfs.Rename("/dir/a", "/dir/c").ok());
  auto names = dfs.List("/dir/");
  ASSERT_TRUE(names.ok());
  std::set<std::string> set(names->begin(), names->end());
  EXPECT_EQ(set, (std::set<std::string>{"/dir/b", "/dir/c"}));
}

TEST(DfsTest, WritesChargeDiskAndNetwork) {
  Dfs dfs(SmallBlocks(3));
  sim::SimContext ctx;
  {
    sim::SimContext::Scope scope(&ctx);
    auto wf = dfs.Create("/cost", 0);
    ASSERT_TRUE((*wf)->Append(std::string(1 << 20, 'c')).ok());
  ASSERT_TRUE((*wf)->Sync().ok());
  }
  // Synchronous 3-way pipeline of 1 MB must cost milliseconds of virtual
  // time (disk + two network hops).
  EXPECT_GT(ctx.now(), 10000);
  EXPECT_GT(dfs.data_node(0)->disk()->resource()->total_busy_us(), 0);
}

TEST(DfsTest, LocalReadSkipsNetwork) {
  Dfs dfs(SmallBlocks(3));
  {
    auto wf = dfs.Create("/near", 1);
    ASSERT_TRUE((*wf)->Append(std::string(100000, 'n')).ok());
  ASSERT_TRUE((*wf)->Sync().ok());
  }
  sim::SimContext local, remote;
  {
    sim::SimContext::Scope scope(&local);
    auto rf = dfs.Open("/near", 1);  // writer-local node holds replica 1
    ASSERT_TRUE((*rf)->Read(0, 100000).ok());
  }
  {
    sim::SimContext::Scope scope(&remote);
    // Pick a node with no replica.
    auto blocks = dfs.name_node()->GetBlocks("/near");
    int outsider = -1;
    for (int i = 0; i < 3; i++) {
      const auto& reps = (*blocks)[0].replicas;
      if (std::find(reps.begin(), reps.end(), i) == reps.end()) outsider = i;
    }
    if (outsider >= 0) {
      auto rf = dfs.Open("/near", outsider);
      ASSERT_TRUE((*rf)->Read(0, 100000).ok());
      EXPECT_GT(remote.now(), local.now());
    }
  }
}

// FileSystem adapter behaves like the generic interface.
TEST(DfsFileSystemTest, AdapterRoundTrip) {
  Dfs dfs(SmallBlocks(3));
  DfsFileSystem fs(&dfs, 0);
  auto wf = fs.NewWritableFile("/adapter");
  ASSERT_TRUE(wf.ok());
  ASSERT_TRUE((*wf)->Append("via adapter").ok());
  ASSERT_TRUE((*wf)->Sync().ok());
  ASSERT_TRUE((*wf)->Sync().ok());
  EXPECT_TRUE(fs.Exists("/adapter"));
  EXPECT_EQ(*fs.FileSize("/adapter"), 11u);
  auto rf = fs.NewRandomAccessFile("/adapter");
  EXPECT_EQ(*(*rf)->Read(4, 7), "adapter");
}

TEST(DfsFileSystemTest, NewWritableFileTruncatesExisting) {
  Dfs dfs(SmallBlocks(3));
  DfsFileSystem fs(&dfs, 0);
  {
    auto wf = fs.NewWritableFile("/t");
    ASSERT_TRUE((*wf)->Append("old contents").ok());
  ASSERT_TRUE((*wf)->Sync().ok());
  }
  {
    auto wf = fs.NewWritableFile("/t");
    ASSERT_TRUE(wf.ok());
    ASSERT_TRUE((*wf)->Append("new").ok());
  ASSERT_TRUE((*wf)->Sync().ok());
  }
  EXPECT_EQ(*fs.FileSize("/t"), 3u);
}

}  // namespace
}  // namespace logbase::dfs
