// End-to-end differential fuzz: random operations through the routing
// client against a 3-node mini-cluster and a std::map oracle, with random
// server crash/restart cycles — exercising routing, cache invalidation,
// recovery and multi-tablet state together.

#include <gtest/gtest.h>

#include <map>

#include "src/cluster/mini_cluster.h"
#include "src/util/random.h"

namespace logbase::cluster {
namespace {

class ClusterFuzzTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterFuzzTest,
                         ::testing::Values(7ull, 5150ull));

TEST_P(ClusterFuzzTest, ClientViewMatchesOracleAcrossCrashes) {
  MiniClusterOptions options;
  options.num_nodes = 3;
  MiniCluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster.master()
                  ->CreateTable("t", {"c"}, {{"c"}}, {"key3", "key6"})
                  .ok());
  auto client = cluster.NewClient(0);

  Random rnd(GetParam());
  std::map<std::string, std::string> oracle;
  for (int step = 0; step < 800; step++) {
    std::string key = "key" + std::to_string(rnd.Uniform(9)) + "-" +
                      std::to_string(rnd.Uniform(40));
    uint64_t action = rnd.Uniform(100);
    if (action < 50) {
      std::string value = "v" + std::to_string(step);
      ASSERT_TRUE(client->Put("t", 0, key, value, {}).ok()) << step;
      oracle[key] = value;
    } else if (action < 65) {
      Status s = client->Delete("t", 0, key, {});
      ASSERT_TRUE(s.ok() || s.IsNotFound()) << s.ToString();
      oracle.erase(key);
    } else if (action < 90) {
      auto got = client->Get("t", 0, key, client::ReadOptions{});
      auto want = oracle.find(key);
      if (want == oracle.end()) {
        EXPECT_TRUE(got.status().IsNotFound()) << key;
      } else {
        ASSERT_TRUE(got.ok()) << key << " " << got.status().ToString();
        EXPECT_EQ(got->value(), want->second);
      }
    } else if (action < 96) {
      // Crash + restart one server; the master re-registers its tablets.
      int victim = static_cast<int>(rnd.Uniform(3));
      cluster.CrashServer(victim);
      ASSERT_TRUE(cluster.RestartServer(victim).ok());
      auto locations = cluster.master()->LocateAll("t", 0);
      ASSERT_TRUE(locations.ok());
      for (const auto& location : *locations) {
        if (location.server_id == victim) {
          ASSERT_TRUE(cluster.server(victim)
                          ->OpenTablet(location.descriptor)
                          .ok());
        }
      }
      client->InvalidateCache();
    } else {
      // Scan a random sub-range and compare against the oracle.
      std::string lo = "key" + std::to_string(rnd.Uniform(9));
      std::string hi = lo + "\xff";
      auto rows = client->Scan("t", 0, lo, hi, client::ReadOptions{});
      ASSERT_TRUE(rows.ok());
      size_t expected = 0;
      for (const auto& [k, v] : oracle) {
        if (k >= lo && k < hi) expected++;
      }
      EXPECT_EQ(rows->size(), expected) << lo;
    }
  }
  // Final full agreement.
  for (const auto& [key, value] : oracle) {
    auto got = client->Get("t", 0, key, client::ReadOptions{});
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(got->value(), value);
  }
}

}  // namespace
}  // namespace logbase::cluster
