// Read replicas (src/replica/): checkpoint-seeded log tailing, watermark
// snapshot reads that match the primary, transactional holdback, bounded
// staleness with primary fallback, crash/reseed convergence, replica
// teardown on migration, and the I6 nemesis invariant (replica-served reads
// are prefix-consistent snapshots, deterministically under faults).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/balance/migration.h"
#include "src/cluster/mini_cluster.h"
#include "src/fault/nemesis.h"
#include "src/log/log_record.h"
#include "src/sim/sim_context.h"

namespace logbase::replica {
namespace {

// SetReplicaFleet replaces the fleet vector and the resolver std::function
// while the balancer thread calls ResolveReplica/ReplicaFleet; all four now
// go through mu_. Before the fix ReplicaFleet returned a reference to the
// vector and ResolveReplica invoked the std::function with no lock — a data
// race mid-reassignment. Hammer both sides; TSan (this suite carries the
// "concurrency" label) and the monotonic-id assertions below catch a relapse.
TEST(ReplicaFleetTest, ConcurrentFleetSwapAndResolve) {
  coord::CoordinationService coord;
  auto no_servers = [](int) -> tablet::TabletServer* { return nullptr; };
  master::Master m(&coord, 0, no_servers, {});

  std::atomic<bool> stop{false};
  std::thread swapper([&] {
    for (int round = 1; !stop.load(std::memory_order_relaxed); round++) {
      // Resolver captures its round; ids and resolver swap together.
      m.SetReplicaFleet({round, round + 1},
                        [](int) -> replica::ReplicaServer* { return nullptr; });
    }
  });
  for (int i = 0; i < 20000; i++) {
    std::vector<int> fleet = m.ReplicaFleet();
    if (!fleet.empty()) {
      ASSERT_EQ(fleet.size(), 2u);
      // Both entries come from the same SetReplicaFleet call: a torn or
      // stale mix would break the pairing invariant.
      ASSERT_EQ(fleet[1], fleet[0] + 1);
      EXPECT_EQ(m.ResolveReplica(fleet[0]), nullptr);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  swapper.join();
}

cluster::MiniClusterOptions SmallCluster(int nodes = 3, int replicas = 1) {
  cluster::MiniClusterOptions options;
  options.num_nodes = nodes;
  options.num_replicas = replicas;
  options.server_template.segment_bytes = 1 << 20;
  return options;
}

std::string Key(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "key%04d", i);
  return buf;
}

/// Attaches every assigned tablet to `count` distinct replicas; returns the
/// tablet uids.
std::vector<std::string> AttachAll(master::Master* m, int count) {
  std::vector<std::string> uids;
  for (const auto& [uid, location] : m->AssignmentsSnapshot()) {
    uids.push_back(uid);
    for (int i = 0; i < count; i++) {
      auto added = m->AddReplica(uid);
      EXPECT_TRUE(added.ok()) << added.status().ToString();
    }
  }
  return uids;
}

TEST(ReplicaTest, WatermarkReadsMatchPrimary) {
  cluster::MiniCluster cluster(SmallCluster());
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster.master()->CreateTable("t", {"v"}, {{"v"}}, {}).ok());
  auto client = cluster.NewClient(0);
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(client->Put("t", 0, Key(i), "v" + std::to_string(i), {}).ok());
  }

  // Attach after the writes: the replica seeds from the checkpoint (if any)
  // and catches up through the log tail. The client's routes were cached
  // before the attach, so drop them to pick up the replica set.
  AttachAll(cluster.active_master(), 1);
  ASSERT_TRUE(cluster.TickReplicas().ok());
  client->InvalidateCache();

  for (int i = 0; i < 50; i++) {
    client::ReadOptions primary_opts;
    auto primary = client->Get("t", 0, Key(i), primary_opts);
    ASSERT_TRUE(primary.ok()) << primary.status().ToString();
    EXPECT_EQ(primary->snapshot_ts, 0u);

    client::ReadOptions stale_opts;
    stale_opts.allow_stale = true;
    auto stale = client->Get("t", 0, Key(i), stale_opts);
    ASSERT_TRUE(stale.ok()) << stale.status().ToString();
    EXPECT_NE(stale->snapshot_ts, 0u);  // actually replica-served
    EXPECT_EQ(stale->value(), primary->value());
    EXPECT_EQ(stale->timestamp(), primary->timestamp());
    EXPECT_LE(stale->timestamp(), stale->snapshot_ts);
  }

  // New writes become visible on the next tick.
  ASSERT_TRUE(client->Put("t", 0, Key(7), "updated", {}).ok());
  ASSERT_TRUE(cluster.TickReplicas().ok());
  client::ReadOptions stale_opts;
  stale_opts.allow_stale = true;
  auto updated = client->Get("t", 0, Key(7), stale_opts);
  ASSERT_TRUE(updated.ok());
  EXPECT_NE(updated->snapshot_ts, 0u);
  EXPECT_EQ(updated->value(), "updated");
}

TEST(ReplicaTest, TxnHoldbackAdvancesOnCommit) {
  cluster::MiniCluster cluster(SmallCluster());
  ASSERT_TRUE(cluster.Start().ok());
  master::Master* m = cluster.master();
  ASSERT_TRUE(m->CreateTable("t", {"v"}, {{"v"}}, {}).ok());
  auto client = cluster.NewClient(0);
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(client->Put("t", 0, Key(i), "base", {}).ok());
  }
  std::vector<std::string> uids = AttachAll(m, 1);
  ASSERT_EQ(uids.size(), 1u);
  const std::string& uid = uids[0];
  ASSERT_TRUE(cluster.TickReplicas().ok());
  ReplicaServer* rep = cluster.replica(0);
  auto before = rep->Watermark(uid);
  ASSERT_TRUE(before.ok());

  // Craft an uncommitted transaction directly in the owner's log. Client
  // transactions buffer writes until Commit, so data-without-COMMIT state —
  // what the tailer must hold the watermark under — needs a raw AppendBatch.
  auto location = m->GetAssignment(uid);
  ASSERT_TRUE(location.ok());
  tablet::TabletServer* server = cluster.server(location->server_id);
  tablet::Tablet* tablet = server->FindTablet(uid);
  ASSERT_NE(tablet, nullptr);
  // A commit timestamp above every issued one, straight from the authority.
  const uint64_t txn_ts = cluster.coord()->NextTimestamp(0);
  log::LogRecord rec;
  rec.type = log::LogRecordType::kData;
  rec.key.table_id = tablet->descriptor().table_id;
  rec.key.tablet_id = tablet->descriptor().packed_id();
  rec.txn_id = 777;
  rec.row.primary_key = Key(3);
  rec.row.column_group = 0;
  rec.row.timestamp = txn_ts;
  rec.value = "txn-value";
  rec.commit_ts = txn_ts;
  std::vector<log::LogRecord> batch{rec};
  ASSERT_TRUE(server->AppendBatch(&batch).ok());

  // Auto-commit writes land above the pending transaction (the server may
  // first drain a cached timestamp block below txn_ts; write until one
  // lands above it)...
  uint64_t late_ts = 0;
  for (int i = 0; i < 10000 && late_ts <= txn_ts; i++) {
    ASSERT_TRUE(client->Put("t", 0, Key(100 + i), "late", {}).ok());
    auto landed = client->Get("t", 0, Key(100 + i), client::ReadOptions{});
    ASSERT_TRUE(landed.ok());
    late_ts = landed->timestamp();
  }
  ASSERT_GT(late_ts, txn_ts);
  ASSERT_TRUE(cluster.TickReplicas().ok());
  // ...but the watermark holds just below it: a snapshot that included the
  // late writes would have to decide the undecided transaction.
  auto held = rep->Watermark(uid);
  ASSERT_TRUE(held.ok());
  EXPECT_EQ(*held, txn_ts - 1);
  EXPECT_GE(*held, *before);

  // COMMIT decides it; the watermark catches up past the late writes and
  // the transactional value becomes readable at the replica.
  log::LogRecord commit;
  commit.type = log::LogRecordType::kCommit;
  commit.txn_id = 777;
  commit.commit_ts = txn_ts;
  std::vector<log::LogRecord> commit_batch{commit};
  ASSERT_TRUE(server->AppendBatch(&commit_batch).ok());
  ASSERT_TRUE(cluster.TickReplicas().ok());
  auto advanced = rep->Watermark(uid);
  ASSERT_TRUE(advanced.ok());
  EXPECT_GE(*advanced, late_ts);

  uint64_t snapshot_ts = 0;
  auto got = rep->Get(uid, Slice(Key(3)), /*as_of=*/0, /*max_staleness_us=*/0,
                      &snapshot_ts);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->value, "txn-value");
  EXPECT_EQ(got->timestamp, txn_ts);
  EXPECT_EQ(snapshot_ts, *advanced);
}

TEST(ReplicaTest, StalenessRejectionIsRetryableAndFallsBack) {
  sim::SimContext ctx;
  sim::SimContext::Scope scope(&ctx);
  cluster::MiniCluster cluster(SmallCluster());
  ASSERT_TRUE(cluster.Start().ok());
  master::Master* m = cluster.master();
  ASSERT_TRUE(m->CreateTable("t", {"v"}, {{"v"}}, {}).ok());
  auto client = cluster.NewClient(0);
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(client->Put("t", 0, Key(i), "fresh", {}).ok());
  }
  std::vector<std::string> uids = AttachAll(m, 1);
  const std::string& uid = uids[0];
  ASSERT_TRUE(cluster.TickReplicas().ok());
  client->InvalidateCache();  // routes were cached before the attach
  ReplicaServer* rep = cluster.replica(0);

  // Just synced: any bound is satisfied.
  uint64_t snapshot_ts = 0;
  auto fresh = rep->Get(uid, Slice(Key(1)), 0, /*max_staleness_us=*/1000,
                        &snapshot_ts);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_NE(snapshot_ts, 0u);

  // The replica falls behind the caller's bound: the read is rejected with
  // a *retryable* Unavailable, never silently served.
  ctx.Advance(5000);
  auto rejected = rep->Get(uid, Slice(Key(1)), 0, /*max_staleness_us=*/1000);
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsUnavailable())
      << rejected.status().ToString();
  auto staleness = rep->StalenessUs(uid);
  ASSERT_TRUE(staleness.ok());
  EXPECT_GE(*staleness, 5000);

  // The client rides the rejection to the primary: the read succeeds and is
  // marked primary-served (snapshot_ts == 0).
  client::ReadOptions bounded;
  bounded.allow_stale = true;
  bounded.max_staleness_us = 1000;
  auto fallback = client->Get("t", 0, Key(1), bounded);
  ASSERT_TRUE(fallback.ok()) << fallback.status().ToString();
  EXPECT_EQ(fallback->snapshot_ts, 0u);
  EXPECT_EQ(fallback->value(), "fresh");

  // A tick re-syncs the tailer; the same bounded read is replica-served.
  ASSERT_TRUE(cluster.TickReplicas().ok());
  auto resynced = client->Get("t", 0, Key(1), bounded);
  ASSERT_TRUE(resynced.ok());
  EXPECT_NE(resynced->snapshot_ts, 0u);
}

TEST(ReplicaTest, CrashedReplicaRebuildsAndConverges) {
  cluster::MiniCluster cluster(SmallCluster());
  ASSERT_TRUE(cluster.Start().ok());
  master::Master* m = cluster.master();
  ASSERT_TRUE(m->CreateTable("t", {"v"}, {{"v"}}, {}).ok());
  auto client = cluster.NewClient(0);
  for (int i = 0; i < 60; i++) {
    ASSERT_TRUE(client->Put("t", 0, Key(i), "v" + std::to_string(i), {}).ok());
  }
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(client->Delete("t", 0, Key(i * 6), {}).ok());
  }
  std::vector<std::string> uids = AttachAll(m, 1);
  const std::string& uid = uids[0];
  ASSERT_TRUE(cluster.TickReplicas().ok());

  // Crash drops all replica soft state; writes keep flowing meanwhile.
  cluster.CrashReplica(0);
  EXPECT_FALSE(cluster.replica(0)->running());
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(client->Put("t", 0, Key(200 + i), "post-crash", {}).ok());
  }

  // Restart reseeds from the DFS (checkpoint + log tail) and converges: the
  // replica's snapshot at its watermark is byte-identical to the primary's
  // as-of read at the same timestamp.
  ASSERT_TRUE(cluster.RestartReplica(0).ok());
  ASSERT_TRUE(cluster.TickReplicas().ok());
  ReplicaServer* rep = cluster.replica(0);
  uint64_t snapshot_ts = 0;
  auto replica_rows = rep->Scan(uid, Slice(""), Slice(""), /*as_of=*/0,
                                /*max_staleness_us=*/0, &snapshot_ts);
  ASSERT_TRUE(replica_rows.ok()) << replica_rows.status().ToString();
  ASSERT_NE(snapshot_ts, 0u);

  auto location = m->GetAssignment(uid);
  ASSERT_TRUE(location.ok());
  auto primary_rows = cluster.server(location->server_id)
                          ->Scan(uid, Slice(""), Slice(""), snapshot_ts);
  ASSERT_TRUE(primary_rows.ok()) << primary_rows.status().ToString();

  ASSERT_EQ(replica_rows->size(), primary_rows->size());
  EXPECT_FALSE(replica_rows->empty());
  for (size_t i = 0; i < replica_rows->size(); i++) {
    EXPECT_EQ((*replica_rows)[i].key, (*primary_rows)[i].key);
    EXPECT_EQ((*replica_rows)[i].timestamp, (*primary_rows)[i].timestamp);
    EXPECT_EQ((*replica_rows)[i].value, (*primary_rows)[i].value);
  }
}

TEST(ReplicaTest, MigrationTearsDownReplicasAndClientsFallBack) {
  cluster::MiniCluster cluster(SmallCluster());
  ASSERT_TRUE(cluster.Start().ok());
  master::Master* m = cluster.active_master();
  ASSERT_TRUE(m->CreateTable("t", {"v"}, {{"v"}}, {}).ok());
  auto client = cluster.NewClient(0);
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(client->Put("t", 0, Key(i), "v" + std::to_string(i), {}).ok());
  }
  std::vector<std::string> uids = AttachAll(m, 1);
  const std::string& uid = uids[0];
  ASSERT_TRUE(cluster.TickReplicas().ok());
  client->InvalidateCache();  // routes were cached before the attach

  // Warm the client's route cache with the replica route.
  client::ReadOptions stale_opts;
  stale_opts.allow_stale = true;
  auto warmed = client->Get("t", 0, Key(2), stale_opts);
  ASSERT_TRUE(warmed.ok());
  EXPECT_NE(warmed->snapshot_ts, 0u);

  // Migrate the tablet: its replicas tail the *source's* log, so the master
  // tears them down rather than serve a frozen cursor.
  auto location = m->GetAssignment(uid);
  ASSERT_TRUE(location.ok());
  int to = (location->server_id + 1) % cluster.num_nodes();
  balance::MigrationCoordinator coordinator(m);
  ASSERT_TRUE(coordinator.MigrateTablet(uid, to).ok());

  auto after = m->GetAssignment(uid);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->server_id, to);
  EXPECT_TRUE(after->replicas.empty());
  EXPECT_EQ(cluster.replica(0)->NumTablets(), 0);

  // The client still holds the old route: the torn-down replica answers
  // "unknown replica tablet", which invalidates the cache and the read
  // completes on the (new) primary in the same call.
  auto fallback = client->Get("t", 0, Key(2), stale_opts);
  ASSERT_TRUE(fallback.ok()) << fallback.status().ToString();
  EXPECT_EQ(fallback->snapshot_ts, 0u);
  EXPECT_EQ(fallback->value(), "v2");

  // Re-attached replicas on the new owner serve again.
  ASSERT_TRUE(m->AddReplica(uid).ok());
  ASSERT_TRUE(cluster.TickReplicas().ok());
  client->InvalidateCache();
  auto reattached = client->Get("t", 0, Key(2), stale_opts);
  ASSERT_TRUE(reattached.ok());
  EXPECT_NE(reattached->snapshot_ts, 0u);
  EXPECT_EQ(reattached->value(), "v2");
}

// I6 under chaos: replica crashes/restarts race server and master faults
// while 40% of reads are stale-tolerant. Every replica-served read must be a
// prefix-consistent snapshot of the primary's history, and the whole run —
// replica routing decisions included — must replay bit-identically.
TEST(ReplicaNemesisTest, StaleReadsHoldI6Deterministically) {
  fault::NemesisOptions options;
  options.num_nodes = 5;
  options.num_masters = 2;
  options.seed = 909;
  options.rounds = 250;
  options.num_replicas = 2;
  fault::FaultPlan plan;
  plan.Crash(90 * 1000, 2)
      .CrashMaster(180 * 1000, 0)
      .Restart(260 * 1000, 2)
      .RestartMaster(420 * 1000, 0);

  auto first = fault::RunNemesis(options, plan);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(first->violations.empty()) << first->ToString();
  EXPECT_GT(first->ops_acked, 0);
  EXPECT_GT(first->stale_reads_served, 0) << first->ToString();

  auto second = fault::RunNemesis(options, plan);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second->violations.empty()) << second->ToString();
  EXPECT_EQ(first->schedule, second->schedule);
  EXPECT_EQ(first->table_digest, second->table_digest) << first->ToString();
  EXPECT_EQ(first->ops_acked, second->ops_acked);
  EXPECT_EQ(first->stale_reads_served, second->stale_reads_served);
  EXPECT_EQ(first->stale_read_fallbacks, second->stale_read_fallbacks);
}

}  // namespace
}  // namespace logbase::replica
