// Tests for the ranked-mutex lock-order checker (src/util/ordered_mutex.h).
// The default violation handler aborts; these tests install a capturing hook
// so inversions are observable without dying.

#include "src/util/ordered_mutex.h"

#include <atomic>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/util/thread_pool.h"

namespace logbase {
namespace {

// The hook is a plain function pointer, so captures go through a static.
std::vector<LockOrderViolation>* g_captured = nullptr;

void CaptureViolation(const LockOrderViolation& v) {
  if (g_captured != nullptr) g_captured->push_back(v);
}

class HookGuard {
 public:
  explicit HookGuard(std::vector<LockOrderViolation>* sink) {
    g_captured = sink;
    previous_ = SetLockOrderHook(&CaptureViolation);
  }
  ~HookGuard() {
    (void)SetLockOrderHook(previous_);
    g_captured = nullptr;
  }

 private:
  LockOrderHook previous_;
};

TEST(OrderedMutexTest, OrderedAcquisitionPasses) {
  std::vector<LockOrderViolation> violations;
  HookGuard guard(&violations);
  OrderedMutex low(100, "test.low");
  OrderedMutex high(200, "test.high");
  {
    std::lock_guard<OrderedMutex> l1(low);
    EXPECT_EQ(HeldRankCount(), 1u);
    std::lock_guard<OrderedMutex> l2(high);
    EXPECT_EQ(HeldRankCount(), 2u);
  }
  EXPECT_EQ(HeldRankCount(), 0u);
  EXPECT_TRUE(violations.empty());
}

TEST(OrderedMutexTest, InvertedAcquisitionIsDetected) {
  std::vector<LockOrderViolation> violations;
  HookGuard guard(&violations);
  OrderedMutex low(100, "test.low");
  OrderedMutex high(200, "test.high");
  {
    std::lock_guard<OrderedMutex> l1(high);
    std::lock_guard<OrderedMutex> l2(low);  // inversion: 100 while holding 200
  }
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].held_rank, 200u);
  EXPECT_STREQ(violations[0].held_name, "test.high");
  EXPECT_EQ(violations[0].acquiring_rank, 100u);
  EXPECT_STREQ(violations[0].acquiring_name, "test.low");
}

TEST(OrderedMutexTest, EqualRankReacquisitionIsDetected) {
  // Equal ranks are an inversion too: two locks of the same rank can be
  // taken in either order by different threads, so same-rank nesting is
  // banned outright (the rule is strictly-greater).
  std::vector<LockOrderViolation> violations;
  HookGuard guard(&violations);
  OrderedMutex a(300, "test.a");
  OrderedMutex b(300, "test.b");
  {
    std::lock_guard<OrderedMutex> l1(a);
    std::lock_guard<OrderedMutex> l2(b);
  }
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].acquiring_rank, 300u);
}

TEST(OrderedMutexTest, OutOfLifoUnlockKeepsStackBalanced) {
  std::vector<LockOrderViolation> violations;
  HookGuard guard(&violations);
  OrderedMutex a(100, "test.a");
  OrderedMutex b(200, "test.b");
  OrderedMutex c(300, "test.c");
  a.lock();
  b.lock();
  c.lock();
  b.unlock();  // release the middle lock first
  EXPECT_EQ(HeldRankCount(), 2u);
  c.unlock();
  a.unlock();
  EXPECT_EQ(HeldRankCount(), 0u);
  EXPECT_TRUE(violations.empty());
}

TEST(OrderedMutexTest, FailedTryLockDoesNotRecordARank) {
  std::vector<LockOrderViolation> violations;
  HookGuard guard(&violations);
  OrderedMutex mu(100, "test.mu");
  mu.lock();
  std::thread other([&] {
    EXPECT_FALSE(mu.try_lock());
    EXPECT_EQ(HeldRankCount(), 0u);  // the failed attempt left no residue
  });
  other.join();
  mu.unlock();
  EXPECT_TRUE(violations.empty());
}

TEST(OrderedMutexTest, SuccessfulTryLockParticipatesInChecking) {
  std::vector<LockOrderViolation> violations;
  HookGuard guard(&violations);
  OrderedMutex low(100, "test.low");
  OrderedMutex high(200, "test.high");
  std::lock_guard<OrderedMutex> l(high);
  ASSERT_TRUE(low.try_lock());  // still an inversion even via try_lock
  low.unlock();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].acquiring_rank, 100u);
}

TEST(OrderedMutexTest, HeldRanksAreThreadLocal) {
  std::vector<LockOrderViolation> violations;
  HookGuard guard(&violations);
  OrderedMutex mu(500, "test.mu");
  std::lock_guard<OrderedMutex> l(mu);
  std::thread other([] { EXPECT_EQ(HeldRankCount(), 0u); });
  other.join();
  EXPECT_EQ(HeldRankCount(), 1u);
  EXPECT_TRUE(violations.empty());
}

TEST(OrderedSharedMutexTest, SharedAcquisitionsObeyRankOrder) {
  std::vector<LockOrderViolation> violations;
  HookGuard guard(&violations);
  OrderedSharedMutex low(100, "test.shared.low");
  OrderedSharedMutex high(200, "test.shared.high");
  {
    std::shared_lock<OrderedSharedMutex> r1(low);
    std::shared_lock<OrderedSharedMutex> r2(high);
    EXPECT_EQ(HeldRankCount(), 2u);
  }
  EXPECT_TRUE(violations.empty());
  // Fresh objects for the inversion half: reusing `low`/`high` in the
  // opposite order would form a cycle in ThreadSanitizer's own lock graph
  // and fail the tsan preset; our checker is rank-based, not object-based.
  OrderedSharedMutex low2(100, "test.shared.low2");
  OrderedSharedMutex high2(200, "test.shared.high2");
  {
    std::shared_lock<OrderedSharedMutex> r1(high2);
    std::shared_lock<OrderedSharedMutex> r2(low2);  // reader-side inversion
  }
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].held_rank, 200u);
  EXPECT_EQ(violations[0].acquiring_rank, 100u);
}

TEST(OrderedSharedMutexTest, WriterAfterReaderInversionDetected) {
  std::vector<LockOrderViolation> violations;
  HookGuard guard(&violations);
  OrderedSharedMutex low(100, "test.shared.low");
  OrderedSharedMutex high(200, "test.shared.high");
  std::shared_lock<OrderedSharedMutex> r(high);
  {
    std::lock_guard<OrderedSharedMutex> w(low);
  }
  ASSERT_EQ(violations.size(), 1u);
}

TEST(OrderedMutexTest, RealRankTableNestingsPass) {
  // Spot-check representative real nestings from the rank table: each pair
  // below is actually taken in this order somewhere in the system.
  std::vector<LockOrderViolation> violations;
  HookGuard guard(&violations);
  OrderedMutex master(lockrank::kMasterState, "master.state");
  OrderedMutex znodes(lockrank::kCoordZnodes, "coord.znodes");
  OrderedMutex tablets(lockrank::kTabletServerTablets, "tablet.tablets");
  OrderedMutex namenode(lockrank::kDfsNameNode, "dfs.namenode");
  OrderedMutex writer(lockrank::kLogWriter, "log.writer");
  OrderedMutex shard(lockrank::kMetricsShard, "obs.shard");
  {
    // Master queries the coordination service under its own lock.
    std::lock_guard<OrderedMutex> l1(master);
    std::lock_guard<OrderedMutex> l2(znodes);
  }
  {
    // Checkpoint: tablets_mu_ held across DFS metadata and a metrics bump.
    std::lock_guard<OrderedMutex> l1(tablets);
    std::lock_guard<OrderedMutex> l2(namenode);
    std::lock_guard<OrderedMutex> l3(shard);
  }
  {
    // Appends: log-writer lock held across the DFS write path.
    std::lock_guard<OrderedMutex> l1(writer);
    std::lock_guard<OrderedMutex> l2(namenode);
  }
  EXPECT_TRUE(violations.empty());
}

TEST(OrderedMutexTest, ThreadPoolWaitCyclesCleanly) {
  // condition_variable_any::wait releases and reacquires the OrderedMutex;
  // the held-rank stack must stay balanced through those cycles.
  std::vector<LockOrderViolation> violations;
  HookGuard guard(&violations);
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; i++) {
    pool.Submit([&ran] { ran++; });
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 64);
  EXPECT_EQ(HeldRankCount(), 0u);
  EXPECT_TRUE(violations.empty());
}

}  // namespace
}  // namespace logbase
