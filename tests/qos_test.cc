// Multi-tenant QoS (src/qos/): token-bucket math on the virtual clock,
// quota spec codec + distribution through the master's /meta/quota znodes,
// admission control (admit/queue/shed, priorities, retry-after hints),
// Status wire round-trips, RetryPolicy hint capping, per-tenant load
// accounting, end-to-end throttling through the client, and the I7 nemesis
// invariant (quota enforcement deterministic under faults; shed ops never
// apply).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/balance/load_report.h"
#include "src/client/client.h"
#include "src/cluster/mini_cluster.h"
#include "src/fault/nemesis.h"
#include "src/fault/retry_policy.h"
#include "src/qos/admission.h"
#include "src/qos/quota_registry.h"
#include "src/qos/tenant.h"
#include "src/qos/token_bucket.h"
#include "src/sim/sim_context.h"
#include "src/util/status.h"

namespace logbase {
namespace {

using qos::AdmissionController;
using qos::AdmissionOptions;
using qos::BucketLimits;
using qos::QuotaSpec;
using qos::TenantQuotaRegistry;
using qos::TokenBucket;

// ---------------------------------------------------------------------------
// TokenBucket
// ---------------------------------------------------------------------------

TEST(TokenBucketTest, BurstThenRefill) {
  BucketLimits limits;
  limits.ops_per_sec = 1000;
  limits.ops_burst = 10;
  TokenBucket bucket(limits);

  // The full burst fits immediately; probing never consumes.
  EXPECT_EQ(bucket.WaitFor(10, 0, 0), 0);
  EXPECT_EQ(bucket.WaitFor(10, 0, 0), 0);
  bucket.Consume(10, 0, 0);
  EXPECT_DOUBLE_EQ(bucket.OpsAvailable(0), 0.0);

  // One token refills in 1ms at 1000 ops/s; the wait rounds up.
  int64_t wait = bucket.WaitFor(1, 0, 0);
  EXPECT_GT(wait, 0);
  EXPECT_LE(wait, 1001);
  EXPECT_EQ(bucket.WaitFor(1, 0, wait), 0);

  // Refill caps at the burst, not beyond.
  EXPECT_EQ(bucket.WaitFor(10, 0, 1'000'000), 0);
  EXPECT_GT(bucket.WaitFor(11, 0, 1'000'000), 0);
}

TEST(TokenBucketTest, BytesDimensionIndependent) {
  BucketLimits limits;
  limits.bytes_per_sec = 1000;
  limits.bytes_burst = 500;
  TokenBucket bucket(limits);

  // Ops are unlimited here; only bytes gate.
  EXPECT_EQ(bucket.WaitFor(1000, 500, 0), 0);
  bucket.Consume(1000, 500, 0);
  int64_t wait = bucket.WaitFor(0, 100, 0);
  EXPECT_GT(wait, 0);
  EXPECT_LE(wait, 100'001);
  EXPECT_EQ(bucket.WaitFor(0, 100, wait), 0);
}

TEST(TokenBucketTest, ConsumeAtReleaseCreatesDebt) {
  BucketLimits limits;
  limits.ops_per_sec = 100;
  limits.ops_burst = 1;
  TokenBucket bucket(limits);

  // A queued op consumes at its future release time: a probe at that same
  // time sees the debt and must wait a full token's refill again.
  bucket.Consume(1, 0, 0);
  int64_t wait = bucket.WaitFor(1, 0, 0);  // ~10ms
  bucket.Consume(1, 0, wait);
  int64_t wait2 = bucket.WaitFor(1, 0, wait);
  EXPECT_GT(wait2, 9'000);
}

TEST(TokenBucketTest, Deterministic) {
  BucketLimits limits;
  limits.ops_per_sec = 333;
  limits.ops_burst = 7;
  TokenBucket a(limits), b(limits);
  sim::VirtualTime t = 0;
  for (int i = 0; i < 200; i++) {
    t += 1000 + 37 * (i % 11);
    ASSERT_EQ(a.WaitFor(2, 0, t), b.WaitFor(2, 0, t)) << i;
    if (a.WaitFor(2, 0, t) == 0) {
      a.Consume(2, 0, t);
      b.Consume(2, 0, t);
    }
    ASSERT_DOUBLE_EQ(a.OpsAvailable(t), b.OpsAvailable(t)) << i;
  }
}

// ---------------------------------------------------------------------------
// QuotaSpec codec + TenantQuotaRegistry resolution
// ---------------------------------------------------------------------------

TEST(QuotaCodecTest, RoundTrip) {
  QuotaSpec spec;
  spec.tenant = "tenant-a";
  spec.table = "t42";
  spec.limits.ops_per_sec = 123.456;
  spec.limits.ops_burst = 0.25;
  spec.limits.bytes_per_sec = 1e9;
  spec.limits.bytes_burst = 7.0;
  std::string wire = qos::EncodeQuotaSpec(spec);

  QuotaSpec out;
  ASSERT_TRUE(qos::DecodeQuotaSpec(Slice(wire), &out));
  EXPECT_EQ(out.tenant, spec.tenant);
  EXPECT_EQ(out.table, spec.table);
  EXPECT_TRUE(out.limits == spec.limits);
  EXPECT_EQ(out.Id(), "tenant-a@t42");

  // Truncated and over-long inputs are rejected.
  QuotaSpec scratch;
  EXPECT_FALSE(qos::DecodeQuotaSpec(Slice(wire.data(), wire.size() - 1),
                                    &scratch));
  std::string extra = wire + "x";
  EXPECT_FALSE(qos::DecodeQuotaSpec(Slice(extra), &scratch));
}

TEST(QuotaRegistryTest, ResolutionPrecedence) {
  TenantQuotaRegistry registry(nullptr, 0);

  QuotaSpec tenant_wide;
  tenant_wide.tenant = "a";
  tenant_wide.limits.ops_per_sec = 100;
  tenant_wide.limits.ops_burst = 1;
  registry.SetLocal(tenant_wide);

  QuotaSpec scoped = tenant_wide;
  scoped.table = "hot";
  scoped.limits.ops_burst = 50;
  registry.SetLocal(scoped);

  // The scoped quota wins on its scope; the tenant-wide one elsewhere.
  EXPECT_EQ(registry.WaitFor("a", "hot", 50, 0, 0), 0);
  EXPECT_GT(registry.WaitFor("a", "cold", 50, 0, 0), 0);
  EXPECT_EQ(registry.WaitFor("a", "cold", 1, 0, 0), 0);

  // Unknown tenants are unlimited.
  EXPECT_EQ(registry.WaitFor("b", "hot", 1'000'000, 1'000'000, 0), 0);
  EXPECT_DOUBLE_EQ(registry.OpsAvailable("b", "hot", 0), -1.0);
}

// ---------------------------------------------------------------------------
// Master SetQuota -> znodes -> every server's registry
// ---------------------------------------------------------------------------

TEST(MasterQuotaTest, SetQuotaDistributesAndSurvivesFailover) {
  sim::SimContext ctx;
  sim::SimContext::Scope scope(&ctx);

  cluster::MiniClusterOptions options;
  options.num_nodes = 3;
  options.num_masters = 2;
  options.server_template.quota_registry.refresh_interval_us = 10'000;
  cluster::MiniCluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());
  master::Master* active = cluster.active_master();
  ASSERT_NE(active, nullptr);

  QuotaSpec quota;
  quota.tenant = "hostile";
  quota.limits.ops_per_sec = 10;
  quota.limits.ops_burst = 2;
  ASSERT_TRUE(active->SetQuota(quota).ok());

  // Exact-match read-back + snapshot.
  auto got = active->GetQuota("hostile", "");
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->limits == quota.limits);
  EXPECT_TRUE(active->GetQuota("hostile", "sometable").status().IsNotFound());
  EXPECT_EQ(active->QuotasSnapshot().size(), 1u);

  // Empty tenant and standby masters are rejected.
  EXPECT_TRUE(active->SetQuota(QuotaSpec{}).IsInvalidArgument());
  for (int i = 0; i < cluster.num_masters(); i++) {
    if (cluster.masters(i) == active) continue;
    EXPECT_TRUE(cluster.masters(i)->SetQuota(quota).IsUnavailable());
  }

  // Every tablet server's registry resolves the quota once its TTL expires.
  ctx.Advance(20'000);
  for (int node = 0; node < options.num_nodes; node++) {
    TenantQuotaRegistry* registry = cluster.server(node)->quota_registry();
    EXPECT_EQ(registry->WaitFor("hostile", "", 2, 0, ctx.now()), 0)
        << "node " << node;
    EXPECT_GT(registry->WaitFor("hostile", "", 3, 0, ctx.now()), 0)
        << "node " << node;
  }
  // Replica registries share the same coordination service (none running
  // here, but the wiring is covered by the nemesis/replica suites).

  // Failover: the quota was persisted in znodes, so the standby that takes
  // over recovers it.
  int active_idx = -1;
  for (int i = 0; i < cluster.num_masters(); i++) {
    if (cluster.masters(i) == active) active_idx = i;
  }
  ASSERT_GE(active_idx, 0);
  cluster.CrashMaster(active_idx);
  master::Master* next = cluster.active_master();
  ASSERT_NE(next, nullptr);
  ASSERT_NE(next, active);
  auto recovered = next->GetQuota("hostile", "");
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered->limits == quota.limits);
}

// ---------------------------------------------------------------------------
// AdmissionController: admit / queue / shed
// ---------------------------------------------------------------------------

TEST(AdmissionTest, DisabledIsFreePass) {
  AdmissionOptions options;  // enabled = false
  options.server_limits.ops_per_sec = 1;
  options.server_limits.ops_burst = 1;
  AdmissionController admission(options, nullptr);
  for (int i = 0; i < 100; i++) {
    EXPECT_TRUE(admission.Admit("t", 1, 1 << 20).ok());
  }
}

TEST(AdmissionTest, QueueAdvancesClockThenSheds) {
  sim::SimContext ctx;
  sim::SimContext::Scope scope(&ctx);

  AdmissionOptions options;
  options.enabled = true;
  options.server_limits.ops_per_sec = 1000;
  options.server_limits.ops_burst = 4;
  AdmissionController admission(options, nullptr);

  // Burst admits instantly.
  for (int i = 0; i < 4; i++) {
    ASSERT_TRUE(admission.Admit("t", 1, 0).ok()) << i;
  }
  EXPECT_EQ(ctx.now(), 0);

  // The 5th op waits ~1ms for a token: under the kNormal 10ms cap, so it
  // queues — the ambient clock advances by the wait and the op is admitted.
  ASSERT_TRUE(admission.Admit("t", 1, 0).ok());
  EXPECT_GT(ctx.now(), 900);
  EXPECT_LE(ctx.now(), 1100);

  // A burst-sized op now needs ~4ms+: still queueable; a 15-token op needs
  // ~15ms: over the cap, shed with the honest wait as the hint.
  Status shed = admission.Admit("t", 15, 0);
  EXPECT_TRUE(shed.IsUnavailable());
  EXPECT_GT(shed.retry_after_us(), 10'000);
  EXPECT_NE(shed.message().find("server saturated"), std::string::npos);
}

TEST(AdmissionTest, PriorityLaddersShedLowFirst) {
  AdmissionOptions options;
  options.enabled = true;
  options.server_limits.ops_per_sec = 1000;
  options.server_limits.ops_burst = 1;

  // A 7-token op waits ~6ms: the kLow cap (5ms) sheds it, the kNormal cap
  // (10ms) queues it. Run each case on a fresh controller + clock.
  qos::TenantIdentity low{"batch", qos::Priority::kLow};
  {
    sim::SimContext ctx;
    sim::SimContext::Scope scope(&ctx);
    AdmissionController admission(options, nullptr);
    ASSERT_TRUE(admission.Admit("t", 1, 0).ok());
    qos::TenantScope tenant(&low);
    EXPECT_TRUE(admission.Admit("t", 6, 0).IsUnavailable());
  }
  {
    sim::SimContext ctx;
    sim::SimContext::Scope scope(&ctx);
    AdmissionController admission(options, nullptr);
    ASSERT_TRUE(admission.Admit("t", 1, 0).ok());
    EXPECT_TRUE(admission.Admit("t", 6, 0).ok());  // kNormal default
    EXPECT_GT(ctx.now(), 5'000);
  }
}

TEST(AdmissionTest, QueueDepthBoundsAcrossClients) {
  AdmissionOptions options;
  options.enabled = true;
  options.server_limits.ops_per_sec = 1000;
  options.server_limits.ops_burst = 1;
  options.max_queue_depth = {1, 1, 1};
  AdmissionController admission(options, nullptr);

  // A queued request advances its *own* client's clock to the release time,
  // so from that client's view the entry is already drained. A second
  // client still at an earlier virtual time sees it pending — and with the
  // kNormal queue capped at one entry, that client's queueable-wait request
  // is shed by depth, not by the wait cap.
  sim::SimContext client_a;
  {
    sim::SimContext::Scope scope(&client_a);
    ASSERT_TRUE(admission.Admit("t", 1, 0).ok());  // burst
    ASSERT_TRUE(admission.Admit("t", 3, 0).ok());  // queued ~3ms out
    EXPECT_GT(client_a.now(), 3000);
    EXPECT_EQ(admission.QueueDepth(), 0u);  // drained from a's view
  }
  sim::SimContext client_b;  // still at t=0
  {
    sim::SimContext::Scope scope(&client_b);
    EXPECT_EQ(admission.QueueDepth(), 1u);  // a's entry releases later
    Status s = admission.Admit("t", 1, 0);
    ASSERT_TRUE(s.IsUnavailable()) << s.ToString();
    EXPECT_GT(s.retry_after_us(), 0);
    EXPECT_EQ(client_b.now(), 0);  // shed without blocking
  }
}

TEST(AdmissionTest, TenantQuotaShedsWithHonestHint) {
  sim::SimContext ctx;
  sim::SimContext::Scope scope(&ctx);

  TenantQuotaRegistry registry(nullptr, 0);
  QuotaSpec quota;
  quota.tenant = "hostile";
  quota.limits.ops_per_sec = 100;
  quota.limits.ops_burst = 1;
  registry.SetLocal(quota);

  AdmissionOptions options;
  options.enabled = true;
  AdmissionController admission(options, &registry);

  qos::TenantIdentity hostile{"hostile", qos::Priority::kLow};
  qos::TenantScope tenant(&hostile);

  ASSERT_TRUE(admission.Admit("t", 1, 0).ok());
  // Next op needs a 10ms refill: over the kLow 5ms cap -> shed, and the
  // message names the throttled tenant.
  Status s = admission.Admit("t", 1, 0);
  ASSERT_TRUE(s.IsUnavailable());
  EXPECT_GT(s.retry_after_us(), 9'000);
  EXPECT_NE(s.message().find("over tenant quota: hostile"),
            std::string::npos);

  // The shed burned no tokens: sleeping out the hint admits cleanly.
  ctx.Advance(s.retry_after_us());
  EXPECT_TRUE(admission.Admit("t", 1, 0).ok());

  // Other tenants are untouched by the hostile tenant's quota.
  qos::TenantIdentity victim{"victim", qos::Priority::kNormal};
  qos::TenantScope inner(&victim);
  EXPECT_TRUE(admission.Admit("t", 100, 0).ok());
}

// ---------------------------------------------------------------------------
// Status wire codec + RetryPolicy hint handling
// ---------------------------------------------------------------------------

TEST(StatusWireTest, RoundTripsWithAndWithoutHint) {
  Status plain = Status::IOError("disk on fire");
  Status decoded = Status::OK();
  ASSERT_TRUE(Status::DecodeWire(Slice(plain.EncodeWire()), &decoded));
  EXPECT_TRUE(decoded.IsIOError());
  EXPECT_EQ(decoded.message(), "disk on fire");
  EXPECT_EQ(decoded.retry_after_us(), 0);

  Status hinted = Status::UnavailableWithRetryAfter("over quota", 12'345);
  ASSERT_TRUE(Status::DecodeWire(Slice(hinted.EncodeWire()), &decoded));
  EXPECT_TRUE(decoded.IsUnavailable());
  EXPECT_EQ(decoded.message(), "over quota");
  EXPECT_EQ(decoded.retry_after_us(), 12'345);

  Status ok = Status::OK();
  ASSERT_TRUE(Status::DecodeWire(Slice(ok.EncodeWire()), &decoded));
  EXPECT_TRUE(decoded.ok());

  // Corrupt inputs are rejected, not misdecoded.
  EXPECT_FALSE(Status::DecodeWire(Slice(""), &decoded));
  std::string trailing = hinted.EncodeWire() + "zz";
  EXPECT_FALSE(Status::DecodeWire(Slice(trailing), &decoded));
}

TEST(RetryHintTest, HintCapsBackoffDeterministically) {
  fault::RetryOptions options;
  options.max_attempts = 2;
  options.initial_backoff_us = 50'000;
  options.jitter = 0.2;
  options.seed = 77;
  fault::RetryPolicy policy(options);

  // The server's 2ms hint caps the jittered ~50ms backoff exactly.
  auto run_once = [&policy]() {
    sim::SimContext ctx;
    sim::SimContext::Scope scope(&ctx);
    int calls = 0;
    Status s = policy.Run("qos.test", [&calls]() {
      calls++;
      return Status::UnavailableWithRetryAfter("shed", 2'000);
    });
    EXPECT_TRUE(s.IsUnavailable());
    EXPECT_EQ(calls, 2);
    return ctx.now();
  };
  sim::VirtualTime first = run_once();
  EXPECT_EQ(first, 2'000);
  EXPECT_EQ(run_once(), first);

  // A hint larger than the computed backoff changes nothing.
  sim::SimContext ctx;
  sim::SimContext::Scope scope(&ctx);
  (void)policy.Run("qos.test2", []() {
    return Status::UnavailableWithRetryAfter("shed", 10'000'000);
  });
  EXPECT_EQ(ctx.now(), policy.BackoffUs("qos.test2", 1));
}

TEST(RetryHintTest, ExhaustedPreservesHint) {
  fault::RetryOptions options;
  options.max_attempts = 1;
  fault::RetryPolicy policy(options);
  Status s = policy.Run("qos.exhaust", []() {
    return Status::UnavailableWithRetryAfter("shed", 4'242);
  });
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_EQ(s.retry_after_us(), 4'242);
}

// ---------------------------------------------------------------------------
// End to end: client tenant scopes, front-door shedding, load attribution
// ---------------------------------------------------------------------------

struct QosCluster {
  sim::SimContext ctx;
  std::unique_ptr<sim::SimContext::Scope> scope;
  std::unique_ptr<cluster::MiniCluster> cluster;

  QosCluster() {
    scope = std::make_unique<sim::SimContext::Scope>(&ctx);
    cluster::MiniClusterOptions options;
    options.num_nodes = 3;
    options.server_template.admission.enabled = true;
    options.server_template.quota_registry.refresh_interval_us = 10'000;
    cluster = std::make_unique<cluster::MiniCluster>(options);
    if (!cluster->Start().ok()) std::abort();
    auto schema = cluster->master()->CreateTable("t", {"v"}, {{"v"}},
                                                 {"key50"});
    if (!schema.ok()) std::abort();
  }
};

TEST(QosEndToEndTest, ShedWriteNeverApplies) {
  QosCluster fixture;
  cluster::MiniCluster& cluster = *fixture.cluster;

  QuotaSpec quota;
  quota.tenant = "hostile";
  // 1 op/s: the refill period (1 s) dwarfs any virtual latency the
  // intermediate operations below can accumulate, so the bucket stays
  // empty for the whole test after the first admitted write.
  quota.limits.ops_per_sec = 1;
  quota.limits.ops_burst = 1;
  ASSERT_TRUE(cluster.active_master()->SetQuota(quota).ok());
  fixture.ctx.Advance(20'000);

  auto client = cluster.NewClient(0);
  client->set_tenant({"hostile", qos::Priority::kLow});
  fault::RetryOptions retry;
  retry.max_attempts = 1;  // fail fast: a shed must surface, not retry away
  client->set_retry_options(retry);

  // First write rides the burst; the immediate second one is shed.
  ASSERT_TRUE(client->Put("t", 0, "key10", "v1", {}).ok());
  Status shed = client->Put("t", 0, "key10", "v2", {});
  ASSERT_TRUE(shed.IsUnavailable()) << shed.ToString();
  EXPECT_GT(shed.retry_after_us(), 0);

  // The shed write applied nothing: the admitted value is still served.
  auto read_client = cluster.NewClient(1);
  auto r = read_client->Get("t", 0, "key10", client::ReadOptions{});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(r->found());
  EXPECT_EQ(r->value(), "v1");

  // Reads are gated too.
  Status shed_read =
      client->Get("t", 0, "key10", client::ReadOptions{}).status();
  EXPECT_TRUE(shed_read.IsUnavailable());
}

TEST(QosEndToEndTest, RetryAfterHintPacesThrottledTenant) {
  QosCluster fixture;
  cluster::MiniCluster& cluster = *fixture.cluster;

  QuotaSpec quota;
  quota.tenant = "hostile";
  quota.limits.ops_per_sec = 200;
  quota.limits.ops_burst = 5;
  ASSERT_TRUE(cluster.active_master()->SetQuota(quota).ok());
  fixture.ctx.Advance(20'000);

  auto client = cluster.NewClient(0);
  client->set_tenant({"hostile", qos::Priority::kLow});
  fault::RetryOptions retry;
  retry.max_attempts = 10;  // enough backoff budget to ride out any shed
  retry.seed = 7;
  client->set_retry_options(retry);

  // 50 closed-loop writes at a 200 ops/s quota: every op eventually admits
  // (sheds sleep out their hint-capped backoff, short waits queue at the
  // front door), so the elapsed virtual time approaches 50 / 200 = 250ms
  // and the acked rate lands near the configured quota.
  sim::VirtualTime start = fixture.ctx.now();
  int acked = 0;
  for (int i = 0; i < 50; i++) {
    if (client->Put("t", 0, "key10", "v" + std::to_string(i), {}).ok()) {
      acked++;
    }
  }
  EXPECT_EQ(acked, 50);
  double seconds =
      static_cast<double>(fixture.ctx.now() - start) / 1e6;
  double rate = acked / seconds;
  EXPECT_GT(rate, 150) << "paced rate " << rate;
  EXPECT_LT(rate, 270) << "paced rate " << rate;
}

TEST(QosEndToEndTest, PerTenantLoadReport) {
  QosCluster fixture;
  cluster::MiniCluster& cluster = *fixture.cluster;

  auto alice = cluster.NewClient(0);
  alice->set_tenant({"alice", qos::Priority::kNormal});
  auto bob = cluster.NewClient(1);
  bob->set_tenant({"bob", qos::Priority::kNormal});

  for (int i = 0; i < 30; i++) {
    ASSERT_TRUE(alice->Put("t", 0, "key10", "a", {}).ok());
  }
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(bob->Put("t", 0, "key10", "b", {}).ok());
  }

  // The owning server's load report attributes the window per tenant.
  uint64_t alice_ops = 0, bob_ops = 0;
  std::string dominant;
  for (int node = 0; node < cluster.num_nodes(); node++) {
    balance::LoadReport report =
        cluster.server(node)->CollectLoadReport();
    for (const balance::TabletLoad& t : report.tablets) {
      for (const balance::TenantLoad& tenant : t.tenants) {
        if (tenant.tenant == "alice") alice_ops += tenant.ops;
        if (tenant.tenant == "bob") bob_ops += tenant.ops;
      }
      if (!t.tenants.empty() && dominant.empty()) {
        dominant = t.DominantTenant();
      }
    }
  }
  EXPECT_EQ(alice_ops, 30u);
  EXPECT_EQ(bob_ops, 10u);
  EXPECT_EQ(dominant, "alice");

  // The balancer folds the same windows into per-tenant scores.
  ASSERT_TRUE(cluster.balancer()->Tick().ok());
  // (Windows were drained above; push fresh traffic through and tick.)
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(alice->Put("t", 0, "key10", "a", {}).ok());
  }
  ASSERT_TRUE(cluster.balancer()->Tick().ok());
  auto scores = cluster.balancer()->TenantScores();
  ASSERT_TRUE(scores.count("alice") > 0);
  EXPECT_GT(scores["alice"], 0.0);
}

// ---------------------------------------------------------------------------
// I7: quota enforcement under faults (nemesis)
// ---------------------------------------------------------------------------

TEST(QosNemesisTest, I7ShedNeverAppliesAndReplaysBitIdentically) {
  fault::NemesisOptions options;
  options.num_nodes = 5;
  options.num_masters = 2;
  options.seed = 7070;
  options.rounds = 200;
  // One hostile write fires per 2.5 ms round (= 400/s attempted). The quota
  // must sit low enough that the steady-state over-quota wait
  // ((1 - refill_per_round) / rate) exceeds kLow's 5 ms queue cap — above
  // ~133 ops/s every hostile write would be politely queued instead of
  // shed, and the test wants to see both outcomes.
  options.qos_hostile_ops_per_sec = 50;
  fault::FaultPlan plan;
  plan.Crash(60 * 1000, 2)
      .Restart(180 * 1000, 2)
      .PartitionNodes(250 * 1000, 1, 3)
      .Heal(350 * 1000);

  auto first = fault::RunNemesis(options, plan);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(first->violations.empty()) << first->ToString();
  EXPECT_GT(first->ops_hostile_attempted, 0);
  EXPECT_GT(first->ops_shed, 0) << first->ToString();
  EXPECT_LT(first->ops_shed, first->ops_hostile_attempted);

  auto second = fault::RunNemesis(options, plan);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second->violations.empty()) << second->ToString();
  EXPECT_EQ(first->schedule, second->schedule);
  EXPECT_EQ(first->table_digest, second->table_digest);
  EXPECT_EQ(first->ops_shed, second->ops_shed);
  EXPECT_EQ(first->ops_hostile_attempted, second->ops_hostile_attempted);
  EXPECT_EQ(first->ops_acked, second->ops_acked);
}

}  // namespace
}  // namespace logbase
