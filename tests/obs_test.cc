// Tests for the observability layer: the process-global metrics registry
// (lock-striped counters/gauges/histograms), span-based op tracing on the
// virtual clock, and the end-to-end wiring — a MiniCluster round-trip must
// decompose into the per-component costs the simulator charged.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/cluster/mini_cluster.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/sim_context.h"

namespace logbase::obs {
namespace {

TEST(MetricsRegistryTest, HandlesAreSharedByName) {
  MetricsRegistry registry;
  Counter* a = registry.counter("test.a");
  Counter* b = registry.counter("test.a");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, registry.counter("test.b"));
  a->Add(3);
  EXPECT_EQ(b->value(), 3u);

  Gauge* g = registry.gauge("test.g");
  g->Set(7);
  g->Add(-2);
  EXPECT_EQ(registry.gauge("test.g")->value(), 5);
}

TEST(MetricsRegistryTest, ConcurrentUpdatesAndLookups) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&registry, t] {
      // Lookups race with updates across every shard; per-thread counters
      // race on creation, the shared ones on increment.
      Counter* shared = registry.counter("conc.shared");
      Counter* mine = registry.counter("conc.t" + std::to_string(t));
      HistogramMetric* h = registry.histogram("conc.latency.us");
      for (int i = 0; i < kOpsPerThread; i++) {
        shared->Add();
        mine->Add();
        if (i % 100 == 0) h->Observe(static_cast<double>(i));
      }
    });
  }
  for (auto& t : threads) t.join();

  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterValue("conc.shared"),
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  for (int t = 0; t < kThreads; t++) {
    EXPECT_EQ(snap.CounterValue("conc.t" + std::to_string(t)),
              static_cast<uint64_t>(kOpsPerThread));
  }
  const MetricPoint* h = snap.Find("conc.latency.us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, static_cast<uint64_t>(kThreads) * (kOpsPerThread / 100));
}

TEST(MetricsRegistryTest, HistogramSnapshotsMerge) {
  MetricsRegistry registry;
  HistogramMetric* a = registry.histogram("merge.a.us");
  HistogramMetric* b = registry.histogram("merge.b.us");
  for (int i = 1; i <= 100; i++) a->Observe(i);
  for (int i = 101; i <= 200; i++) b->Observe(i);

  Histogram merged = a->Snapshot();
  merged.Merge(b->Snapshot());
  EXPECT_EQ(merged.num(), 200u);
  EXPECT_DOUBLE_EQ(merged.min(), 1.0);
  EXPECT_DOUBLE_EQ(merged.max(), 200.0);
  EXPECT_DOUBLE_EQ(merged.Average(), 100.5);
  // The merge must not disturb the sources.
  EXPECT_EQ(a->Snapshot().num(), 100u);
  EXPECT_EQ(b->Snapshot().num(), 100u);
}

TEST(MetricsRegistryTest, SnapshotDeltaScopesAPhase) {
  MetricsRegistry registry;
  registry.counter("phase.ops")->Add(10);
  registry.histogram("phase.us")->Observe(50);
  MetricsSnapshot before = registry.Snapshot();
  registry.counter("phase.ops")->Add(5);
  registry.histogram("phase.us")->Observe(150);
  MetricsSnapshot delta = registry.Snapshot().Delta(before);

  EXPECT_EQ(delta.CounterValue("phase.ops"), 5u);
  const MetricPoint* h = delta.Find("phase.us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
  EXPECT_DOUBLE_EQ(h->sum, 150.0);
}

TEST(MetricsRegistryTest, ToStringAndJsonNameEveryMetric) {
  MetricsRegistry registry;
  registry.counter("fmt.count")->Add(2);
  registry.gauge("fmt.level")->Set(-4);
  registry.histogram("fmt.us")->Observe(9);
  MetricsSnapshot snap = registry.Snapshot();
  std::string text = snap.ToString();
  std::string json = snap.ToJson();
  for (const char* name : {"fmt.count", "fmt.level", "fmt.us"}) {
    EXPECT_NE(text.find(name), std::string::npos) << text;
    EXPECT_NE(json.find(name), std::string::npos) << json;
  }
}

TEST(TraceTest, SpanNestingUnderSimContext) {
  MetricsRegistry::Global().Reset();
  sim::SimContext ctx;
  OpTracer tracer;
  sim::SimContext::Scope sim_scope(&ctx);
  OpTracer::Scope trace_scope(&tracer);
  {
    Span outer("obs_test.outer");
    ctx.Advance(10);
    {
      Span inner("obs_test.inner");
      EXPECT_EQ(tracer.open_depth(), 2);
      ctx.Advance(30);
    }
    ctx.Advance(5);
  }
  EXPECT_EQ(tracer.open_depth(), 0);

  // Children close before parents; depth reflects nesting.
  ASSERT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.spans()[0].name, "obs_test.inner");
  EXPECT_EQ(tracer.spans()[0].depth, 1);
  EXPECT_EQ(tracer.spans()[1].name, "obs_test.outer");
  EXPECT_EQ(tracer.spans()[1].depth, 0);

  // The outer span covers the inner one plus its own work.
  EXPECT_EQ(tracer.TotalUs("obs_test.inner"), 30);
  EXPECT_EQ(tracer.TotalUs("obs_test.outer"), 45);
  EXPECT_EQ(tracer.CountOf("obs_test.inner"), 1);

  // Every span also lands in the global `<name>.us` histogram.
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  EXPECT_DOUBLE_EQ(snap.HistogramSum("obs_test.outer.us"), 45.0);
  EXPECT_DOUBLE_EQ(snap.HistogramSum("obs_test.inner.us"), 30.0);
}

TEST(TraceTest, SpansAreSilentWithoutSimContext) {
  MetricsRegistry::Global().Reset();
  // Without an ambient clock a duration is meaningless: nothing must reach
  // the registry (unit tests and real-time code stay unpolluted).
  { Span span("obs_test.unclocked"); }
  EXPECT_EQ(MetricsRegistry::Global().Snapshot().Find("obs_test.unclocked.us"),
            nullptr);
}

// One client round-trip through a MiniCluster must report a breakdown: every
// major component shows up non-zero, and the op trace of a single Get
// contains a non-empty dfs.pread span (the read reached a data node).
TEST(ObsEndToEndTest, MiniClusterRoundTripReportsComponentBreakdown) {
  cluster::MiniClusterOptions options;
  cluster::MiniCluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster.master()
                  ->CreateTable("t", {"c"}, {{"c"}}, {"key3", "key6"})
                  .ok());
  auto client = cluster.NewClient(0);
  cluster.ResetMetrics();  // scope the snapshot to the workload

  sim::SimContext ctx;
  sim::SimContext::Scope sim_scope(&ctx);
  for (int i = 0; i < 9; i++) {
    std::string key = "key" + std::to_string(i);
    ASSERT_TRUE(client->Put("t", 0, key, "value" + std::to_string(i), {}).ok());
  }
  client::Txn txn = client->BeginTxn();
  ASSERT_TRUE(txn.Write("t", 0, "key1", "txn-value").ok());
  ASSERT_TRUE(txn.Commit().ok());

  OpTracer tracer;
  {
    OpTracer::Scope trace_scope(&tracer);
    auto value = client->Get("t", 0, "key5", client::ReadOptions{});
    ASSERT_TRUE(value.ok());
    EXPECT_EQ(value->value(), "value5");
  }
  // The traced Get decomposes: client.get wraps an index probe and a log
  // read, and the log read paid a real DFS pread.
  EXPECT_EQ(tracer.CountOf("client.get"), 1);
  EXPECT_GE(tracer.CountOf("index.probe"), 1);
  ASSERT_GE(tracer.CountOf("dfs.pread"), 1);
  EXPECT_GT(tracer.TotalUs("dfs.pread"), 0);
  EXPECT_GE(tracer.TotalUs("client.get"), tracer.TotalUs("dfs.pread"));

  obs::MetricsSnapshot snap = cluster.DumpMetrics();
  EXPECT_GT(snap.CounterValue("log.append.bytes"), 0u);
  EXPECT_GT(snap.HistogramSum("log.append.us"), 0.0);
  EXPECT_GT(snap.HistogramSum("index.probe.us"), 0.0);
  EXPECT_GT(snap.HistogramSum("dfs.pread.us"), 0.0);
  EXPECT_GT(snap.CounterValue("dfs.pread.bytes"), 0u);
  EXPECT_EQ(snap.CounterValue("txn.committed"), 1u);

  // The breakdown spans the whole stack: at least 6 distinct components
  // (client, dfs, index, log, tablet, txn) reported non-zero traffic.
  std::set<std::string> components;
  for (const auto& [name, point] : snap.points) {
    bool nonzero = point.kind == MetricPoint::Kind::kGauge
                       ? point.gauge != 0
                       : point.count > 0;
    if (nonzero) components.insert(name.substr(0, name.find('.')));
  }
  EXPECT_GE(components.size(), 6u) << [&] {
    std::string got;
    for (const auto& c : components) got += c + " ";
    return got;
  }();
}

}  // namespace
}  // namespace logbase::obs
