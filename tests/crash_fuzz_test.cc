// Randomized crash-recovery property tests: apply a random op stream
// (puts/overwrites/deletes/checkpoints/compactions) against a tablet server
// and a std::map oracle, crash at random points, recover, and require the
// recovered state to equal the oracle — including multiversion reads.

#include <gtest/gtest.h>

#include <map>

#include "src/dfs/dfs.h"
#include "src/tablet/tablet_server.h"
#include "src/util/random.h"

namespace logbase::tablet {
namespace {

struct Fixture {
  dfs::Dfs dfs{[] {
    dfs::DfsOptions o;
    o.num_nodes = 3;
    return o;
  }()};
  coord::CoordinationService coord;
  std::unique_ptr<TabletServer> server;
  TabletDescriptor descriptor;
  std::string uid;

  Fixture() {
    TabletServerOptions options;
    options.segment_bytes = 1 << 14;  // small segments: many files
    server = std::make_unique<TabletServer>(options, &dfs, &coord);
    EXPECT_TRUE(server->Start().ok());
    descriptor.table_id = 1;
    uid = descriptor.uid();
    EXPECT_TRUE(server->OpenTablet(descriptor).ok());
  }

  /// Restart as the cluster would: recover, then the master re-registers
  /// the tablet (idempotent when recovery already recreated it).
  void Restart() {
    ASSERT_TRUE(server->Start().ok());
    ASSERT_TRUE(server->OpenTablet(descriptor).ok());
  }
};

class CrashFuzzTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, CrashFuzzTest,
                         ::testing::Values(1ull, 42ull, 777ull, 90210ull));

TEST_P(CrashFuzzTest, RecoveredStateMatchesOracle) {
  Fixture f;
  Random rnd(GetParam());
  std::map<std::string, std::string> oracle;

  auto verify = [&]() {
    for (const auto& [key, value] : oracle) {
      auto got = f.server->Get(f.uid, key);
      ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
      EXPECT_EQ(got->value, value) << key;
    }
    // Scan agreement (count + order).
    auto rows = f.server->Scan(f.uid, "", "", ~0ull);
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(rows->size(), oracle.size());
    auto want = oracle.begin();
    for (const auto& row : *rows) {
      EXPECT_EQ(row.key, want->first);
      ++want;
    }
  };

  for (int step = 0; step < 1200; step++) {
    std::string key = "k" + std::to_string(rnd.Uniform(120));
    uint64_t action = rnd.Uniform(100);
    if (action < 55) {
      std::string value = "v" + std::to_string(step);
      ASSERT_TRUE(f.server->Put(f.uid, key, value).ok());
      oracle[key] = value;
    } else if (action < 70) {
      ASSERT_TRUE(f.server->Delete(f.uid, key).ok());
      oracle.erase(key);
    } else if (action < 80) {
      auto got = f.server->Get(f.uid, key);
      auto want = oracle.find(key);
      if (want == oracle.end()) {
        EXPECT_TRUE(got.status().IsNotFound());
      } else {
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(got->value, want->second);
      }
    } else if (action < 85) {
      ASSERT_TRUE(f.server->Checkpoint().ok());
    } else if (action < 90) {
      ASSERT_TRUE(f.server->CompactLog().ok());
    } else if (action < 96) {
      // Crash + recover mid-stream.
      f.server->Crash();
      f.Restart();
      verify();
    } else {
      // Double crash (crash during recovery window).
      f.server->Crash();
      f.Restart();
      f.server->Crash();
      f.Restart();
      verify();
    }
  }
  f.server->Crash();
  f.Restart();
  verify();
}

class CompactionFuzzTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, CompactionFuzzTest,
                         ::testing::Values(3ull, 1234ull));

TEST_P(CompactionFuzzTest, MultiversionHistoryConsistentAcrossCompactions) {
  Fixture f;
  Random rnd(GetParam());
  // Track full history: key -> [(ts, value)].
  std::map<std::string, std::vector<std::pair<uint64_t, std::string>>>
      history;
  for (int step = 0; step < 600; step++) {
    std::string key = "k" + std::to_string(rnd.Uniform(30));
    std::string value = "v" + std::to_string(step);
    ASSERT_TRUE(f.server->Put(f.uid, key, value).ok());
    auto read = f.server->Get(f.uid, key);
    ASSERT_TRUE(read.ok());
    history[key].emplace_back(read->timestamp, value);
    if (step % 150 == 149) {
      ASSERT_TRUE(f.server->CompactLog().ok());  // keep all versions
    }
  }
  // Every historical version is readable at its timestamp, even after the
  // pointers were swung to sorted segments.
  for (const auto& [key, versions] : history) {
    for (const auto& [ts, value] : versions) {
      auto got = f.server->GetAsOf(f.uid, key, ts);
      ASSERT_TRUE(got.ok()) << key << "@" << ts;
      EXPECT_EQ(got->value, value) << key << "@" << ts;
    }
    auto all = f.server->GetVersions(f.uid, key);
    ASSERT_TRUE(all.ok());
    EXPECT_EQ(all->size(), versions.size()) << key;
  }
}

}  // namespace
}  // namespace logbase::tablet
