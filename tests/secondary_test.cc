// Tests for secondary indexes (the paper's §5 future work, implemented):
// maintenance on writes/deletes, verified lookups through the tablet
// server, historical queries, and attribute changes.

#include <gtest/gtest.h>

#include "src/dfs/dfs.h"
#include "src/secondary/secondary_index.h"
#include "src/tablet/tablet_server.h"

namespace logbase::secondary {
namespace {

// Record values are "attr=<x>;rest"; the extractor pulls <x>.
std::optional<std::string> ExtractAttr(const Slice& value) {
  std::string v = value.ToString();
  if (v.rfind("attr=", 0) != 0) return std::nullopt;
  size_t end = v.find(';');
  return v.substr(5, end == std::string::npos ? std::string::npos : end - 5);
}

std::string Value(const std::string& attr, const std::string& rest = "x") {
  return "attr=" + attr + ";" + rest;
}

TEST(SecondaryIndexTest, LookupFindsMatchingPrimaries) {
  SecondaryIndex index("by_attr", ExtractAttr);
  ASSERT_TRUE(index.OnWrite("pk1", 1, Value("red")).ok());
  ASSERT_TRUE(index.OnWrite("pk2", 2, Value("blue")).ok());
  ASSERT_TRUE(index.OnWrite("pk3", 3, Value("red")).ok());
  auto matches = index.Lookup("red");
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].primary_key, "pk1");
  EXPECT_EQ(matches[1].primary_key, "pk3");
  EXPECT_TRUE(index.Lookup("green").empty());
}

TEST(SecondaryIndexTest, UnindexedValuesSkipped) {
  SecondaryIndex index("by_attr", ExtractAttr);
  ASSERT_TRUE(index.OnWrite("pk1", 1, "no attribute here").ok());
  EXPECT_EQ(index.num_entries(), 0u);
}

TEST(SecondaryIndexTest, DeleteRemovesAllEntries) {
  SecondaryIndex index("by_attr", ExtractAttr);
  ASSERT_TRUE(index.OnWrite("pk1", 1, Value("red")).ok());
  ASSERT_TRUE(index.OnWrite("pk1", 2, Value("blue")).ok());  // attr change
  ASSERT_TRUE(index.OnDelete("pk1").ok());
  EXPECT_TRUE(index.Lookup("red").empty());
  EXPECT_TRUE(index.Lookup("blue").empty());
  EXPECT_EQ(index.num_entries(), 0u);
}

TEST(SecondaryIndexTest, AttributeChangeKeepsHistoricalEntry) {
  SecondaryIndex index("by_attr", ExtractAttr);
  ASSERT_TRUE(index.OnWrite("pk1", 10, Value("red")).ok());
  ASSERT_TRUE(index.OnWrite("pk1", 20, Value("blue")).ok());
  // Historical lookup at t=15 sees the red entry; at latest, both candidate
  // entries exist (the caller verifies against the base record).
  auto old = index.Lookup("red", 15);
  ASSERT_EQ(old.size(), 1u);
  EXPECT_EQ(old[0].timestamp, 10u);
  EXPECT_EQ(index.Lookup("blue", 15).size(), 0u);
  EXPECT_EQ(index.Lookup("blue").size(), 1u);
}

TEST(SecondaryIndexTest, LookupRangeSpansKeys) {
  SecondaryIndex index("by_attr", ExtractAttr);
  ASSERT_TRUE(index.OnWrite("p1", 1, Value("apple")).ok());
  ASSERT_TRUE(index.OnWrite("p2", 2, Value("banana")).ok());
  ASSERT_TRUE(index.OnWrite("p3", 3, Value("cherry")).ok());
  auto matches = index.LookupRange("apple", "cherry");
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].secondary_key, "apple");
  EXPECT_EQ(matches[1].secondary_key, "banana");
}

TEST(SecondaryIndexTest, BinarySafeKeys) {
  SecondaryIndex index("bin", [](const Slice& v) {
    return std::optional<std::string>(std::string(v.data(), 3));
  });
  std::string attr("a\0b", 3);
  std::string pk("p\0k", 3);
  ASSERT_TRUE(index.OnWrite(Slice(pk), 1, Slice(attr + "tail")).ok());
  auto matches = index.Lookup(Slice(attr));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].primary_key, pk);
  EXPECT_EQ(matches[0].secondary_key, attr);
}

// --------------------------------------------------------------------------
// Through the tablet server: verified lookups.
// --------------------------------------------------------------------------

struct ServerFixture {
  dfs::Dfs dfs{[] {
    dfs::DfsOptions o;
    o.num_nodes = 3;
    return o;
  }()};
  coord::CoordinationService coord;
  std::unique_ptr<tablet::TabletServer> server;
  std::string uid;

  ServerFixture() {
    tablet::TabletServerOptions options;
    server = std::make_unique<tablet::TabletServer>(options, &dfs, &coord);
    EXPECT_TRUE(server->Start().ok());
    tablet::TabletDescriptor d;
    d.table_id = 1;
    uid = d.uid();
    EXPECT_TRUE(server->OpenTablet(d).ok());
  }
};

TEST(TabletSecondaryTest, BackfillIndexesExistingData) {
  ServerFixture f;
  ASSERT_TRUE(f.server->Put(f.uid, "u1", Value("gold")).ok());
  ASSERT_TRUE(f.server->Put(f.uid, "u2", Value("silver")).ok());
  ASSERT_TRUE(f.server->Put(f.uid, "u3", Value("gold")).ok());
  ASSERT_TRUE(
      f.server->CreateSecondaryIndex(f.uid, "by_attr", ExtractAttr).ok());
  auto rows = f.server->LookupBySecondary(f.uid, "by_attr", "gold");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0].key, "u1");
  EXPECT_EQ((*rows)[1].key, "u3");
}

TEST(TabletSecondaryTest, MaintainedOnNewWrites) {
  ServerFixture f;
  ASSERT_TRUE(
      f.server->CreateSecondaryIndex(f.uid, "by_attr", ExtractAttr).ok());
  ASSERT_TRUE(f.server->Put(f.uid, "u1", Value("gold")).ok());
  auto rows = f.server->LookupBySecondary(f.uid, "by_attr", "gold");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

TEST(TabletSecondaryTest, StaleCandidatesVerifiedAway) {
  ServerFixture f;
  ASSERT_TRUE(
      f.server->CreateSecondaryIndex(f.uid, "by_attr", ExtractAttr).ok());
  ASSERT_TRUE(f.server->Put(f.uid, "u1", Value("gold")).ok());
  ASSERT_TRUE(f.server->Put(f.uid, "u1", Value("lead")).ok());
  // The gold entry still exists in the index but the base record no longer
  // maps to it: verification filters it.
  auto gold = f.server->LookupBySecondary(f.uid, "by_attr", "gold");
  ASSERT_TRUE(gold.ok());
  EXPECT_TRUE(gold->empty());
  auto lead = f.server->LookupBySecondary(f.uid, "by_attr", "lead");
  ASSERT_TRUE(lead.ok());
  EXPECT_EQ(lead->size(), 1u);
}

TEST(TabletSecondaryTest, HistoricalLookup) {
  ServerFixture f;
  ASSERT_TRUE(
      f.server->CreateSecondaryIndex(f.uid, "by_attr", ExtractAttr).ok());
  ASSERT_TRUE(f.server->Put(f.uid, "u1", Value("gold")).ok());
  auto versioned = f.server->Get(f.uid, "u1");
  uint64_t gold_ts = versioned->timestamp;
  ASSERT_TRUE(f.server->Put(f.uid, "u1", Value("lead")).ok());
  auto rows = f.server->LookupBySecondary(f.uid, "by_attr", "gold", gold_ts);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].value, Value("gold"));
}

TEST(TabletSecondaryTest, DeleteDropsFromLookups) {
  ServerFixture f;
  ASSERT_TRUE(
      f.server->CreateSecondaryIndex(f.uid, "by_attr", ExtractAttr).ok());
  ASSERT_TRUE(f.server->Put(f.uid, "u1", Value("gold")).ok());
  ASSERT_TRUE(f.server->Delete(f.uid, "u1").ok());
  auto rows = f.server->LookupBySecondary(f.uid, "by_attr", "gold");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST(TabletSecondaryTest, DuplicateIndexNameRejected) {
  ServerFixture f;
  ASSERT_TRUE(
      f.server->CreateSecondaryIndex(f.uid, "by_attr", ExtractAttr).ok());
  EXPECT_TRUE(f.server->CreateSecondaryIndex(f.uid, "by_attr", ExtractAttr)
                  .IsInvalidArgument());
}

TEST(TabletSecondaryTest, UnknownIndexOrTabletRejected) {
  ServerFixture f;
  EXPECT_TRUE(
      f.server->LookupBySecondary(f.uid, "nope", "x").status().IsNotFound());
  EXPECT_TRUE(f.server->CreateSecondaryIndex("t9.g9.r9", "i", ExtractAttr)
                  .IsNotFound());
}

TEST(TabletSecondaryTest, RecreatedAfterRestartByBackfill) {
  ServerFixture f;
  ASSERT_TRUE(f.server->Put(f.uid, "u1", Value("gold")).ok());
  ASSERT_TRUE(
      f.server->CreateSecondaryIndex(f.uid, "by_attr", ExtractAttr).ok());
  f.server->Crash();
  ASSERT_TRUE(f.server->Start().ok());
  // Secondary indexes are application-defined; recreate + backfill.
  ASSERT_TRUE(
      f.server->CreateSecondaryIndex(f.uid, "by_attr", ExtractAttr).ok());
  auto rows = f.server->LookupBySecondary(f.uid, "by_attr", "gold");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

}  // namespace
}  // namespace logbase::secondary
