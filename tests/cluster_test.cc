// Integration tests: master (DDL, routing, failure handling), client
// (routing cache, row operations, transactions) and the mini-cluster
// end-to-end, including node failures with DFS re-replication.

#include <gtest/gtest.h>

#include <initializer_list>
#include <set>
#include <utility>

#include "src/cluster/mini_cluster.h"
#include "src/sim/sim_context.h"

namespace logbase::cluster {
namespace {

MiniClusterOptions SmallCluster(int nodes = 3) {
  MiniClusterOptions options;
  options.num_nodes = nodes;
  options.server_template.segment_bytes = 1 << 20;
  return options;
}

struct ClusterFixture {
  std::unique_ptr<MiniCluster> cluster;
  std::unique_ptr<client::LogBaseClient> client;

  explicit ClusterFixture(int nodes = 3) {
    cluster = std::make_unique<MiniCluster>(SmallCluster(nodes));
    EXPECT_TRUE(cluster->Start().ok());
    client = cluster->NewClient(0);
  }

  Status CreateUsersTable(int splits = 2) {
    std::vector<std::string> split_keys;
    for (int i = 1; i <= splits; i++) {
      split_keys.push_back("user" + std::to_string(i * 3));
    }
    return cluster->master()
        ->CreateTable("users", {"name", "email", "bio"},
                      {{"name", "email"}, {"bio"}}, split_keys)
        .status();
  }
};

TEST(MasterTest, CreateTableAssignsTablets) {
  ClusterFixture f;
  ASSERT_TRUE(f.CreateUsersTable().ok());
  auto schema = f.cluster->master()->GetTable("users");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->groups.size(), 2u);
  // 2 groups x 3 ranges = 6 tablets, all assigned.
  auto locations = f.cluster->master()->LocateAll("users", 0);
  ASSERT_TRUE(locations.ok());
  EXPECT_EQ(locations->size(), 3u);
  for (const auto& location : *locations) {
    EXPECT_GE(location.server_id, 0);
    EXPECT_LT(location.server_id, 3);
  }
}

TEST(MasterTest, DuplicateTableRejected) {
  ClusterFixture f;
  ASSERT_TRUE(f.CreateUsersTable().ok());
  EXPECT_TRUE(f.CreateUsersTable().IsInvalidArgument());
}

TEST(MasterTest, SameRangeColocatesAcrossGroups) {
  // Entity-group clustering (§3.2): the same key range of every column
  // group lives on the same server, keeping row transactions single-server.
  ClusterFixture f;
  ASSERT_TRUE(f.CreateUsersTable().ok());
  auto g0 = f.cluster->master()->LocateAll("users", 0);
  auto g1 = f.cluster->master()->LocateAll("users", 1);
  ASSERT_EQ(g0->size(), g1->size());
  for (size_t i = 0; i < g0->size(); i++) {
    EXPECT_EQ((*g0)[i].server_id, (*g1)[i].server_id);
  }
}

TEST(MasterTest, LocateRoutesByRange) {
  ClusterFixture f;
  ASSERT_TRUE(f.CreateUsersTable().ok());  // splits at user3, user6
  auto low = f.cluster->master()->Locate("users", 0, "user1");
  auto mid = f.cluster->master()->Locate("users", 0, "user4");
  auto high = f.cluster->master()->Locate("users", 0, "user9");
  ASSERT_TRUE(low.ok() && mid.ok() && high.ok());
  EXPECT_EQ(low->descriptor.range_id, 0u);
  EXPECT_EQ(mid->descriptor.range_id, 1u);
  EXPECT_EQ(high->descriptor.range_id, 2u);
  // Boundary key belongs to the right-hand range (start inclusive).
  EXPECT_EQ(f.cluster->master()->Locate("users", 0, "user3")
                ->descriptor.range_id,
            1u);
}

TEST(MasterTest, AddColumnGroup) {
  ClusterFixture f;
  ASSERT_TRUE(f.CreateUsersTable().ok());
  ASSERT_TRUE(
      f.cluster->master()->AddColumnGroup("users", {"last_login"}).ok());
  auto schema = f.cluster->master()->GetTable("users");
  EXPECT_EQ(schema->groups.size(), 3u);
  auto locations = f.cluster->master()->LocateAll("users", 2);
  EXPECT_EQ(locations->size(), 3u);
}

TEST(MasterTest, ElectionProducesActiveMaster) {
  ClusterFixture f;
  EXPECT_TRUE(f.cluster->master()->IsActiveMaster());
}

TEST(ClientTest, PutGetThroughRouting) {
  ClusterFixture f;
  ASSERT_TRUE(f.CreateUsersTable().ok());
  for (int i = 0; i < 10; i++) {
    std::string key = "user" + std::to_string(i);
    ASSERT_TRUE(f.client->Put("users", 0, key, "value" + std::to_string(i), {})
                    .ok());
  }
  for (int i = 0; i < 10; i++) {
    std::string key = "user" + std::to_string(i);
    auto value = f.client->Get("users", 0, key, client::ReadOptions{});
    ASSERT_TRUE(value.ok()) << key;
    EXPECT_EQ(value->value(), "value" + std::to_string(i));
  }
}

TEST(ClientTest, DeleteThroughClient) {
  ClusterFixture f;
  ASSERT_TRUE(f.CreateUsersTable().ok());
  ASSERT_TRUE(f.client->Put("users", 0, "user5", "v", {}).ok());
  ASSERT_TRUE(f.client->Delete("users", 0, "user5", {}).ok());
  EXPECT_TRUE(f.client->Get("users", 0, "user5", client::ReadOptions{})
                  .status()
                  .IsNotFound());
}

TEST(ClientTest, PutBatchSpansTabletsAndDeletes) {
  // One WriteBatch mixing puts across tablet boundaries (splits at user3 and
  // user6), column groups, an interleaved delete, and a same-key overwrite.
  // The client coalesces same-tablet runs into server-side batches; insertion
  // order must still be what the reader observes.
  ClusterFixture f;
  ASSERT_TRUE(f.CreateUsersTable().ok());
  ASSERT_TRUE(f.client->Put("users", 0, "user5", "stale", {}).ok());

  client::WriteBatch batch;
  batch.Put(0, "user1", "v1")
      .Put(0, "user2", "v2")     // same tablet as user1: coalesced run
      .Put(0, "user4", "v4")     // crosses the user3 split
      .Delete(0, "user5")        // delete flushes the run, then applies
      .Put(0, "user7", "v7")     // crosses the user6 split
      .Put(1, "user1", "bio1")   // different column group
      .Put(0, "user9", "early")
      .Put(0, "user9", "late");  // same key twice: later op wins
  ASSERT_TRUE(f.client->PutBatch("users", batch, {}).ok());

  for (auto [key, want] : std::initializer_list<
           std::pair<const char*, const char*>>{
           {"user1", "v1"}, {"user2", "v2"}, {"user4", "v4"},
           {"user7", "v7"}, {"user9", "late"}}) {
    auto value = f.client->Get("users", 0, key, client::ReadOptions{});
    ASSERT_TRUE(value.ok()) << key;
    EXPECT_EQ(value->value(), want) << key;
  }
  EXPECT_EQ(f.client->Get("users", 1, "user1", client::ReadOptions{})->value(),
            "bio1");
  EXPECT_TRUE(f.client->Get("users", 0, "user5", client::ReadOptions{})
                  .status()
                  .IsNotFound());
}

TEST(ClientTest, WriteDeadlineCapsRetries) {
  // WriteOptions::deadline_us caps the retry policy's backoff budget: against
  // a crashed server, a deadline-bounded write gives up within the deadline
  // while an unbounded one burns the full exponential-backoff schedule.
  sim::SimContext ctx;
  sim::SimContext::Scope scope(&ctx);
  ClusterFixture f;
  ASSERT_TRUE(f.CreateUsersTable().ok());
  ASSERT_TRUE(f.client->Put("users", 0, "user1", "v", {}).ok());
  int victim = f.cluster->master()->Locate("users", 0, "user1")->server_id;
  f.cluster->CrashServer(victim);

  sim::VirtualTime t0 = ctx.now();
  Status unbounded = f.client->Put("users", 0, "user1", "w", {});
  sim::VirtualTime unbounded_elapsed = ctx.now() - t0;
  EXPECT_TRUE(unbounded.IsUnavailable()) << unbounded.ToString();

  constexpr sim::VirtualTime kDeadlineUs = 800;
  t0 = ctx.now();
  Status bounded = f.client->Put("users", 0, "user1", "w",
                                 client::WriteOptions{.deadline_us = kDeadlineUs});
  sim::VirtualTime bounded_elapsed = ctx.now() - t0;
  EXPECT_TRUE(bounded.IsUnavailable() || bounded.IsTimedOut())
      << bounded.ToString();
  EXPECT_LE(bounded_elapsed, kDeadlineUs);
  EXPECT_LT(bounded_elapsed, unbounded_elapsed);
}

TEST(ClientTest, ScanSpansTablets) {
  ClusterFixture f;
  ASSERT_TRUE(f.CreateUsersTable().ok());
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(
        f.client->Put("users", 0, "user" + std::to_string(i), "v", {}).ok());
  }
  auto rows =
      f.client->Scan("users", 0, "user2", "user8", client::ReadOptions{});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 6u);  // user2..user7
  EXPECT_EQ((*rows)[0].key, "user2");
  EXPECT_EQ(rows->back().key, "user7");
}

TEST(ClientTest, HistoricalReads) {
  ClusterFixture f;
  ASSERT_TRUE(f.CreateUsersTable().ok());
  ASSERT_TRUE(f.client->Put("users", 0, "user1", "v1", {}).ok());
  auto v1 = f.client->Get("users", 0, "user1", client::ReadOptions{});
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(f.client->Put("users", 0, "user1", "v2", {}).ok());
  auto historical = f.client->Get("users", 0, "user1",
                                  client::ReadOptions{.as_of = v1->timestamp()});
  ASSERT_TRUE(historical.ok());
  EXPECT_EQ(historical->value(), "v1");
  auto versions = f.client->Get("users", 0, "user1",
                                client::ReadOptions{.all_versions = true});
  ASSERT_TRUE(versions.ok());
  EXPECT_EQ(versions->rows.size(), 2u);
}

TEST(ClientTest, RowOperationsAcrossColumnGroups) {
  ClusterFixture f;
  ASSERT_TRUE(f.CreateUsersTable().ok());
  std::map<std::string, std::string> row{
      {"name", "Ada"}, {"email", "ada@example.com"}, {"bio", "pioneer"}};
  ASSERT_TRUE(f.client->PutRow("users", "user7", row).ok());
  // Tuple reconstruction collects from both groups (§3.2).
  auto read = f.client->GetRow("users", "user7");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, row);
}

TEST(ClientTest, TransactionsThroughClient) {
  ClusterFixture f;
  ASSERT_TRUE(f.CreateUsersTable().ok());
  ASSERT_TRUE(f.client->Put("users", 0, "user1", "balance:100", {}).ok());
  client::Txn txn = f.client->BeginTxn();
  auto balance = txn.Read("users", 0, "user1");
  ASSERT_TRUE(balance.ok());
  ASSERT_TRUE(txn.Write("users", 0, "user1", "balance:50").ok());
  ASSERT_TRUE(txn.Write("users", 0, "user2", "balance:50").ok());
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_FALSE(txn.active());
  EXPECT_EQ(
      f.client->Get("users", 0, "user1", client::ReadOptions{})->value(),
      "balance:50");
  EXPECT_EQ(
      f.client->Get("users", 0, "user2", client::ReadOptions{})->value(),
      "balance:50");
}

TEST(ClusterTest, ServerCrashRecoveryEndToEnd) {
  ClusterFixture f;
  ASSERT_TRUE(f.CreateUsersTable().ok());
  for (int i = 0; i < 9; i++) {
    ASSERT_TRUE(
        f.client->Put("users", 0, "user" + std::to_string(i), "v", {}).ok());
  }
  // Crash and restart every server; data must survive via log recovery.
  for (int node = 0; node < 3; node++) {
    f.cluster->CrashServer(node);
    tablet::RecoveryStats stats;
    ASSERT_TRUE(f.cluster->RestartServer(node, &stats).ok());
  }
  f.client->InvalidateCache();
  for (int i = 0; i < 9; i++) {
    EXPECT_TRUE(f.client
                    ->Get("users", 0, "user" + std::to_string(i),
                          client::ReadOptions{})
                    .ok())
        << i;
  }
}

TEST(ClusterTest, PermanentFailureReassignsTablets) {
  ClusterFixture f;
  ASSERT_TRUE(f.CreateUsersTable().ok());
  for (int i = 0; i < 9; i++) {
    ASSERT_TRUE(
        f.client->Put("users", 0, "user" + std::to_string(i), "v", {}).ok());
  }
  // Find a server hosting at least one tablet and kill it for good.
  auto location = f.cluster->master()->Locate("users", 0, "user1");
  int victim = location->server_id;
  f.cluster->CrashServer(victim);
  auto handled = f.cluster->master()->DetectAndHandleFailures();
  ASSERT_TRUE(handled.ok());
  EXPECT_EQ(*handled, 1);
  // All rows stay readable through the reassigned tablets.
  f.client->InvalidateCache();
  for (int i = 0; i < 9; i++) {
    auto value = f.client->Get("users", 0, "user" + std::to_string(i),
                               client::ReadOptions{});
    EXPECT_TRUE(value.ok()) << "user" << i << ": "
                            << value.status().ToString();
  }
  // And new writes land on the new owners.
  EXPECT_TRUE(f.client->Put("users", 0, "user1", "after failover", {}).ok());
  EXPECT_EQ(
      f.client->Get("users", 0, "user1", client::ReadOptions{})->value(),
      "after failover");
}

TEST(ClusterTest, DataNodeLossToleratedByReplication) {
  ClusterFixture f;
  ASSERT_TRUE(f.CreateUsersTable().ok());
  for (int i = 0; i < 9; i++) {
    ASSERT_TRUE(
        f.client->Put("users", 0, "user" + std::to_string(i), "v", {}).ok());
  }
  // Kill machine 2 entirely (tablet server + data node).
  ASSERT_TRUE(f.cluster->KillNode(2).ok());
  ASSERT_TRUE(f.cluster->master()->DetectAndHandleFailures().ok());
  f.client->InvalidateCache();
  for (int i = 0; i < 9; i++) {
    EXPECT_TRUE(f.client
                    ->Get("users", 0, "user" + std::to_string(i),
                          client::ReadOptions{})
                    .ok())
        << i;
  }
}

TEST(ClusterTest, ScalesToMoreNodes) {
  ClusterFixture f(6);
  std::vector<std::string> splits;
  for (int i = 1; i < 6; i++) splits.push_back("k" + std::to_string(i));
  ASSERT_TRUE(f.cluster->master()
                  ->CreateTable("wide", {"c"}, {{"c"}}, splits)
                  .ok());
  std::set<int> used_servers;
  auto locations = f.cluster->master()->LocateAll("wide", 0);
  for (const auto& location : *locations) {
    used_servers.insert(location.server_id);
  }
  EXPECT_EQ(used_servers.size(), 6u);  // one range per node
  for (int i = 0; i < 30; i++) {
    std::string key = "k" + std::to_string(i % 6) + "-" + std::to_string(i);
    ASSERT_TRUE(f.client->Put("wide", 0, key, "v", {}).ok());
    EXPECT_TRUE(f.client->Get("wide", 0, key, client::ReadOptions{}).ok());
  }
}

}  // namespace
}  // namespace logbase::cluster
