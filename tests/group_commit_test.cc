// Tests for the group-commit write path: append-queue coalescing
// boundaries (window, caps, tickets), pipelined quorum-ack replication at
// the DFS sync layer, and recovery of a quorum-durable-but-not-fully-
// replicated log tail.

#include <gtest/gtest.h>

#include "src/dfs/dfs.h"
#include "src/log/log_reader.h"
#include "src/log/log_writer.h"
#include "src/sim/sim_context.h"
#include "src/util/io.h"

namespace logbase::log {
namespace {

LogRecord MakeData(const std::string& key, const std::string& value,
                   uint64_t ts) {
  LogRecord record;
  record.type = LogRecordType::kData;
  record.key.table_id = 1;
  record.key.tablet_id = 7;
  record.row.primary_key = key;
  record.row.timestamp = ts;
  record.value = value;
  record.commit_ts = ts;
  return record;
}

std::vector<LogRecord> One(const std::string& key, uint64_t ts) {
  std::vector<LogRecord> v;
  v.push_back(MakeData(key, "v" + key, ts));
  return v;
}

// ---------------------------------------------------------------------------
// Coalescing boundaries.
// ---------------------------------------------------------------------------

TEST(AppendQueueTest, WaitCoalescesPendingSubmissions) {
  MemFileSystem fs;
  LogWriter writer(&fs, "/log", /*instance=*/5);
  ASSERT_TRUE(writer.Open().ok());

  // Three writers submit before anyone waits: one open batch.
  std::vector<LogRecord> a = One("a", 1);
  std::vector<LogRecord> b;
  b.push_back(MakeData("b", "2", 2));
  b.push_back(MakeData("c", "3", 3));
  std::vector<LogRecord> c = One("d", 4);
  auto ta = writer.Submit(&a);
  auto tb = writer.Submit(&b);
  auto tc = writer.Submit(&c);
  ASSERT_TRUE(ta.ok() && tb.ok() && tc.ok());
  EXPECT_EQ(writer.pending_records(), 4u);
  EXPECT_EQ(ta->batch_seq, tb->batch_seq);
  EXPECT_EQ(tb->batch_seq, tc->batch_seq);

  // The first waiter is the group-commit leader: it flushes for everyone.
  std::vector<LogPtr> pa, pb, pc;
  ASSERT_TRUE(writer.Wait(*tb, &pb).ok());
  EXPECT_EQ(writer.pending_records(), 0u);
  ASSERT_TRUE(writer.Wait(*ta, &pa).ok());
  ASSERT_TRUE(writer.Wait(*tc, &pc).ok());
  ASSERT_EQ(pa.size(), 1u);
  ASSERT_EQ(pb.size(), 2u);
  ASSERT_EQ(pc.size(), 1u);

  // One continuous batch: record frames back to back, in submit order.
  EXPECT_EQ(pb[0].offset, pa[0].offset + pa[0].size);
  EXPECT_EQ(pb[1].offset, pb[0].offset + pb[0].size);
  EXPECT_EQ(pc[0].offset, pb[1].offset + pb[1].size);

  // Ticket pointers locate exactly the submitter's own records, and LSNs
  // run in submit order.
  LogReader reader(&fs, "/log", 5);
  auto ra = reader.Read(pa[0]);
  auto rb = reader.Read(pb[1]);
  auto rc = reader.Read(pc[0]);
  ASSERT_TRUE(ra.ok() && rb.ok() && rc.ok());
  EXPECT_EQ(ra->row.primary_key, "a");
  EXPECT_EQ(rb->row.primary_key, "c");
  EXPECT_EQ(rc->row.primary_key, "d");
  EXPECT_EQ(ra->key.lsn, 1u);
  EXPECT_EQ(rb->key.lsn, 3u);
  EXPECT_EQ(rc->key.lsn, 4u);
}

TEST(AppendQueueTest, RecordCapSealsTheBatch) {
  MemFileSystem fs;
  AppendQueueOptions qo;
  qo.max_batch_records = 3;
  LogWriter writer(&fs, "/log", 0, 64ull << 20, qo);
  ASSERT_TRUE(writer.Open().ok());

  std::vector<Result<AppendTicket>> tickets;
  for (int i = 0; i < 7; i++) {
    std::vector<LogRecord> r = One("k" + std::to_string(i), i + 1);
    tickets.push_back(writer.Submit(&r));
    ASSERT_TRUE(tickets.back().ok());
  }
  // Seals at 3 and 6; the 7th record sits in the open batch.
  EXPECT_EQ(writer.pending_records(), 1u);
  EXPECT_EQ(tickets[0]->batch_seq, tickets[2]->batch_seq);
  EXPECT_NE(tickets[2]->batch_seq, tickets[3]->batch_seq);

  // Tickets of already-flushed batches still collect their pointers.
  for (int i = 0; i < 7; i++) {
    std::vector<LogPtr> ptrs;
    ASSERT_TRUE(writer.Wait(*tickets[i], &ptrs).ok());
    ASSERT_EQ(ptrs.size(), 1u);
    LogReader reader(&fs, "/log", 0);
    auto r = reader.Read(ptrs[0]);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->row.primary_key, "k" + std::to_string(i));
    EXPECT_EQ(r->key.lsn, static_cast<uint64_t>(i + 1));
  }
}

TEST(AppendQueueTest, ByteCapSealsTheBatch) {
  MemFileSystem fs;
  AppendQueueOptions qo;
  qo.max_batch_bytes = 256;
  LogWriter writer(&fs, "/log", 0, 64ull << 20, qo);
  ASSERT_TRUE(writer.Open().ok());

  std::vector<LogRecord> big;
  big.push_back(MakeData("a", std::string(200, 'x'), 1));
  auto t1 = writer.Submit(&big);
  std::vector<LogRecord> big2;
  big2.push_back(MakeData("b", std::string(200, 'y'), 2));
  auto t2 = writer.Submit(&big2);
  ASSERT_TRUE(t1.ok() && t2.ok());
  // The second submission would exceed 256 bytes: the first batch sealed.
  EXPECT_NE(t1->batch_seq, t2->batch_seq);
  EXPECT_EQ(writer.pending_records(), 1u);
}

TEST(AppendQueueTest, WindowExpirySealsOnNextSubmit) {
  sim::SimContext ctx;
  sim::SimContext::Scope scope(&ctx);
  MemFileSystem fs;
  AppendQueueOptions qo;
  qo.window_us = 200;
  LogWriter writer(&fs, "/log", 0, 64ull << 20, qo);
  ASSERT_TRUE(writer.Open().ok());

  std::vector<LogRecord> r1 = One("a", 1);
  auto t1 = writer.Submit(&r1);
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ(writer.pending_records(), 1u);

  ctx.AdvanceTo(300);  // past the window
  std::vector<LogRecord> r2 = One("b", 2);
  auto t2 = writer.Submit(&r2);
  ASSERT_TRUE(t2.ok());
  // r1's batch flushed on arrival of r2; only r2 is pending.
  EXPECT_EQ(writer.pending_records(), 1u);
  EXPECT_NE(t1->batch_seq, t2->batch_seq);

  std::vector<LogPtr> p1, p2;
  ASSERT_TRUE(writer.Wait(*t1, &p1).ok());
  ASSERT_TRUE(writer.Wait(*t2, &p2).ok());
  ASSERT_EQ(p1.size(), 1u);
  ASSERT_EQ(p2.size(), 1u);
}

TEST(AppendQueueTest, WindowZeroDisablesCoalescing) {
  MemFileSystem fs;
  AppendQueueOptions qo;
  qo.window_us = 0;
  LogWriter writer(&fs, "/log", 0, 64ull << 20, qo);
  ASSERT_TRUE(writer.Open().ok());

  std::vector<LogRecord> r1 = One("a", 1);
  auto t1 = writer.Submit(&r1);
  std::vector<LogRecord> r2 = One("b", 2);
  auto t2 = writer.Submit(&r2);
  ASSERT_TRUE(t1.ok() && t2.ok());
  EXPECT_NE(t1->batch_seq, t2->batch_seq);
}

TEST(AppendQueueTest, TicketsAreSingleUse) {
  MemFileSystem fs;
  LogWriter writer(&fs, "/log");
  ASSERT_TRUE(writer.Open().ok());

  std::vector<LogRecord> r = One("a", 1);
  auto t = writer.Submit(&r);
  ASSERT_TRUE(t.ok());
  std::vector<LogPtr> ptrs;
  ASSERT_TRUE(writer.Wait(*t, &ptrs).ok());
  EXPECT_TRUE(writer.Wait(*t, &ptrs).IsInvalidArgument());

  // An empty submission yields an invalid ticket; waiting on it is a no-op.
  std::vector<LogRecord> empty;
  auto te = writer.Submit(&empty);
  ASSERT_TRUE(te.ok());
  EXPECT_FALSE(te->valid());
  std::vector<LogPtr> none;
  EXPECT_TRUE(writer.Wait(*te, &none).ok());
  EXPECT_TRUE(none.empty());
}

TEST(AppendQueueTest, ScannerSeesSubmitOrderAcrossBatches) {
  MemFileSystem fs;
  AppendQueueOptions qo;
  qo.max_batch_records = 2;
  LogWriter writer(&fs, "/log", 0, 64ull << 20, qo);
  ASSERT_TRUE(writer.Open().ok());

  for (int i = 0; i < 7; i++) {
    ASSERT_TRUE(writer.Append(MakeData("k" + std::to_string(i), "v", i + 1))
                    .ok());
  }
  ASSERT_TRUE(writer.Flush().ok());

  LogReader reader(&fs, "/log", 0);
  auto scanner = reader.NewScanner();
  ASSERT_TRUE(scanner.ok());
  uint64_t expected_lsn = 1;
  for (; (*scanner)->Valid(); (*scanner)->Next()) {
    EXPECT_EQ((*scanner)->record().key.lsn, expected_lsn);
    EXPECT_EQ((*scanner)->record().row.primary_key,
              "k" + std::to_string(expected_lsn - 1));
    expected_lsn++;
  }
  EXPECT_TRUE((*scanner)->status().ok());
  EXPECT_EQ(expected_lsn, 8u);
}

// ---------------------------------------------------------------------------
// Pipelined quorum-ack replication (DFS sync layer).
// ---------------------------------------------------------------------------

TEST(PipelinedSyncTest, PipelineDoesNotBlockOnAcks) {
  sim::SimContext ctx;
  sim::SimContext::Scope scope(&ctx);
  dfs::DfsOptions options;
  options.num_nodes = 3;
  dfs::Dfs dfs(options);

  auto file = dfs.Create("/pipelined", 0);
  ASSERT_TRUE(file.ok());
  SyncPolicy policy{SyncPolicy::Ack::kQuorum, /*max_inflight=*/4};
  uint64_t last_ack = 0;
  for (int i = 0; i < 3; i++) {
    ASSERT_TRUE((*file)->Append(Slice(std::string(64 << 10, 'x'))).ok());
    SyncReceipt receipt;
    ASSERT_TRUE((*file)->SyncWith(policy, &receipt).ok());
    // Pipelining: the caller's clock stops at its own NIC push; the
    // replication ack is still outstanding (in the future).
    EXPECT_LT(static_cast<uint64_t>(ctx.now()), receipt.ack_us);
    last_ack = std::max(last_ack, receipt.ack_us);
  }
  // The barrier collects every outstanding ack.
  ASSERT_TRUE((*file)->WaitForAcks().ok());
  EXPECT_GE(static_cast<uint64_t>(ctx.now()), last_ack);
  ASSERT_TRUE((*file)->Close().ok());
}

TEST(PipelinedSyncTest, QuorumAckExcludesStalledStraggler) {
  sim::SimContext ctx;
  sim::SimContext::Scope scope(&ctx);
  dfs::DfsOptions options;
  options.num_nodes = 3;
  dfs::Dfs dfs(options);
  constexpr sim::VirtualTime kStallUs = 50000;
  dfs.data_node(2)->disk()->set_stall_us(kStallUs);

  // Quorum ack: the stalled replica is off the critical path — the ack
  // lands a full stall earlier than the slowest replica's completion.
  {
    auto file = dfs.Create("/quorum", 0);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(Slice(std::string(1024, 'x'))).ok());
    SyncReceipt receipt;
    ASSERT_TRUE((*file)
                    ->SyncWith(SyncPolicy{SyncPolicy::Ack::kQuorum, 1},
                               &receipt)
                    .ok());
    EXPECT_GE(receipt.full_us, receipt.ack_us + kStallUs / 2);
    ASSERT_TRUE((*file)->Close().ok());
  }
  // Full ack: the straggler gates the ack.
  {
    auto file = dfs.Create("/all", 0);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(Slice(std::string(1024, 'x'))).ok());
    SyncReceipt receipt;
    ASSERT_TRUE(
        (*file)
            ->SyncWith(SyncPolicy{SyncPolicy::Ack::kAll, 1}, &receipt)
            .ok());
    EXPECT_EQ(receipt.full_us, receipt.ack_us);
    EXPECT_GE(receipt.ack_us, static_cast<uint64_t>(kStallUs));
    ASSERT_TRUE((*file)->Close().ok());
  }
}

// ---------------------------------------------------------------------------
// Quorum-durable tail recovery.
// ---------------------------------------------------------------------------

TEST(QuorumTailTest, TailSurvivesReplicaLossAndHealsToFullWidth) {
  dfs::DfsOptions options;
  options.num_nodes = 3;
  dfs::Dfs dfs(options);
  dfs::DfsFileSystem fs(&dfs, /*client_node=*/0);

  LogWriter writer(&fs, "/log", 0);
  ASSERT_TRUE(writer.Open().ok());
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(writer.Append(MakeData("a" + std::to_string(i), "v", i + 1))
                    .ok());
  }

  // One log replica dies: the pipeline degrades, survivors keep acking
  // (quorum of the remaining width), and the tail keeps growing.
  dfs.KillDataNode(2);
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(
        writer.Append(MakeData("b" + std::to_string(i), "v", 11 + i)).ok());
  }
  ASSERT_TRUE(writer.Flush().ok());

  // The scanner reads the whole tail from the surviving replicas —
  // including the records the dead replica never saw.
  auto count_records = [&]() -> int {
    LogReader reader(&fs, "/log", 0);
    auto scanner = reader.NewScanner();
    if (!scanner.ok()) return -1;
    int n = 0;
    uint64_t expected_lsn = 1;
    for (; (*scanner)->Valid(); (*scanner)->Next()) {
      if ((*scanner)->record().key.lsn != expected_lsn) return -1;
      expected_lsn++;
      n++;
    }
    if (!(*scanner)->status().ok()) return -1;
    return n;
  };
  EXPECT_EQ(count_records(), 20);

  // The stale replica comes back (missing the tail); the heal sweep
  // re-replicates to full width (invariant I3) and reaches a fixpoint.
  dfs.RestartDataNode(2);
  auto healed = dfs.HealUnderReplicated();
  ASSERT_TRUE(healed.ok());
  EXPECT_GT(*healed, 0);
  auto again = dfs.HealUnderReplicated();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0);

  // With width restored, losing a *different* replica must not lose the
  // tail: the healed copy serves it.
  dfs.KillDataNode(1);
  EXPECT_EQ(count_records(), 20);
}

TEST(QuorumTailTest, TornBatchTailStopsCleanly) {
  MemFileSystem fs;
  LogWriter writer(&fs, "/log", 0);
  ASSERT_TRUE(writer.Open().ok());
  ASSERT_TRUE(writer.Append(MakeData("a", "1", 1)).ok());
  std::vector<LogRecord> batch;
  batch.push_back(MakeData("b", "2", 2));
  batch.push_back(MakeData("c", "3", 3));
  std::vector<LogPtr> ptrs;
  ASSERT_TRUE(writer.AppendBatch(&batch, &ptrs).ok());

  // Truncate inside the second batch's record frames: the batch is torn
  // (e.g. a replica missing the end of a quorum-acked append). The scanner
  // must stop cleanly BEFORE the batch header — a torn batch is invisible
  // as a unit, never half-delivered.
  const std::string segment = SegmentFileName("/log", 1);
  auto raf = fs.NewRandomAccessFile(segment);
  ASSERT_TRUE(raf.ok());
  auto data = (*raf)->Read(0, (*raf)->Size());
  ASSERT_TRUE(data.ok());
  std::string truncated = data->substr(0, ptrs[1].offset + 3);
  auto wf = fs.NewWritableFile(segment);  // truncates the existing file
  ASSERT_TRUE(wf.ok());
  ASSERT_TRUE((*wf)->Append(Slice(truncated)).ok());

  LogReader reader(&fs, "/log", 0);
  auto scanner = reader.NewScanner();
  ASSERT_TRUE(scanner.ok());
  int n = 0;
  for (; (*scanner)->Valid(); (*scanner)->Next()) n++;
  EXPECT_TRUE((*scanner)->status().ok());
  EXPECT_EQ(n, 1);  // only the first (complete) batch
}

TEST(QuorumTailTest, BatchCrcCatchesCorruption) {
  MemFileSystem fs;
  LogWriter writer(&fs, "/log", 0);
  ASSERT_TRUE(writer.Open().ok());
  std::vector<LogRecord> batch;
  batch.push_back(MakeData("a", "1", 1));
  batch.push_back(MakeData("b", "2", 2));
  std::vector<LogPtr> ptrs;
  ASSERT_TRUE(writer.AppendBatch(&batch, &ptrs).ok());

  const std::string segment = SegmentFileName("/log", 1);
  auto raf = fs.NewRandomAccessFile(segment);
  ASSERT_TRUE(raf.ok());
  auto data = (*raf)->Read(0, (*raf)->Size());
  ASSERT_TRUE(data.ok());
  std::string corrupted = *data;
  corrupted[ptrs[1].offset + ptrs[1].size - 1] ^= 0x1;
  auto wf = fs.NewWritableFile(segment);  // truncates the existing file
  ASSERT_TRUE(wf.ok());
  ASSERT_TRUE((*wf)->Append(Slice(corrupted)).ok());

  LogReader reader(&fs, "/log", 0);
  auto scanner = reader.NewScanner();
  ASSERT_TRUE(scanner.ok());
  while ((*scanner)->Valid()) (*scanner)->Next();
  EXPECT_TRUE((*scanner)->status().IsCorruption());
}

}  // namespace
}  // namespace logbase::log
