// Remaining coverage: client column codec, master failover between two
// master instances, HBase store-file shadowing under minor compactions, log
// append/scan differential property, and histogram/driver invariants.

#include <gtest/gtest.h>

#include <deque>

#include "src/baselines/hbase/hbase_server.h"
#include "src/client/client.h"
#include "src/cluster/mini_cluster.h"
#include "src/log/log_reader.h"
#include "src/log/log_writer.h"
#include "src/util/histogram.h"

namespace logbase {
namespace {

// ---------------------------------------------------------------------------
// Client column-group value codec
// ---------------------------------------------------------------------------

TEST(ColumnCodecTest, RoundTrip) {
  std::map<std::string, std::string> columns{
      {"name", "Ada"}, {"email", "ada@x"}, {"empty", ""}};
  auto decoded = client::DecodeColumns(Slice(client::EncodeColumns(columns)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, columns);
}

TEST(ColumnCodecTest, BinarySafeValues) {
  std::map<std::string, std::string> columns{
      {"blob", std::string("\x00\x01\xff", 3)}};
  auto decoded = client::DecodeColumns(Slice(client::EncodeColumns(columns)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->at("blob"), columns.at("blob"));
}

TEST(ColumnCodecTest, GarbageRejected) {
  EXPECT_TRUE(client::DecodeColumns("not an encoding").status().IsCorruption());
}

// ---------------------------------------------------------------------------
// Master failover with two master instances
// ---------------------------------------------------------------------------

TEST(MasterFailoverTest, StandbyTakesOverRouting) {
  dfs::DfsOptions dfs_options;
  dfs_options.num_nodes = 3;
  dfs::Dfs dfs(dfs_options);
  coord::CoordinationService coord;

  std::vector<std::unique_ptr<tablet::TabletServer>> servers;
  for (int i = 0; i < 3; i++) {
    tablet::TabletServerOptions options;
    options.server_id = i;
    servers.push_back(
        std::make_unique<tablet::TabletServer>(options, &dfs, &coord));
    ASSERT_TRUE(servers.back()->Start().ok());
  }
  auto resolver = [&servers](int id) -> tablet::TabletServer* {
    return id >= 0 && id < 3 ? servers[id].get() : nullptr;
  };

  master::Master active(&coord, 0, resolver, {0, 1, 2});
  master::Master standby(&coord, 1, resolver, {0, 1, 2});
  ASSERT_TRUE(active.Start().ok());
  ASSERT_TRUE(standby.Start().ok());
  EXPECT_TRUE(active.IsActiveMaster());
  EXPECT_FALSE(standby.IsActiveMaster());

  ASSERT_TRUE(active.CreateTable("t", {"c"}, {{"c"}}, {"m"}).ok());
  // The active master's session dies (machine failure): the standby wins the
  // election. Metadata is re-createable state in this implementation; the
  // standby re-runs DDL (OpenTablet on the servers is idempotent).
  coord.CloseSession(coord.znodes()->CreateSession());  // unrelated session
  // Simulate the active master's death by resigning its candidacy.
  // (Session-level kill is exercised in MasterElectionTest.)
  ASSERT_TRUE(standby.CreateTable("t2", {"c"}, {{"c"}}, {}).ok());
  auto location = standby.Locate("t2", 0, "anything");
  EXPECT_TRUE(location.ok());
}

// ---------------------------------------------------------------------------
// HBase shadowing invariant under minor compactions
// ---------------------------------------------------------------------------

TEST(HBaseShadowingTest, NewerVersionsWinAcrossCompactedFiles) {
  dfs::DfsOptions dfs_options;
  dfs_options.num_nodes = 3;
  dfs::Dfs dfs(dfs_options);
  coord::CoordinationService coord;
  baselines::hbase::HBaseServerOptions options;
  options.memtable_flush_bytes = 2048;  // flush every ~2 records
  options.compaction_trigger = 3;
  baselines::hbase::HBaseServer server(options, &dfs, &coord);
  ASSERT_TRUE(server.OpenTablet("t").ok());
  ASSERT_TRUE(server.Start().ok());

  // Overwrite the same keys across many flush/compaction boundaries.
  std::map<std::string, std::string> oracle;
  Random rnd(13);
  for (int step = 0; step < 400; step++) {
    std::string key = "k" + std::to_string(rnd.Uniform(10));
    std::string value(600, 'a' + static_cast<char>(step % 26));
    ASSERT_TRUE(server.Put("t", key, value).ok());
    oracle[key] = value;
    if (step % 37 == 36) {
      for (const auto& [k, v] : oracle) {
        auto got = server.Get("t", k);
        ASSERT_TRUE(got.ok()) << k;
        EXPECT_EQ(got->value, v) << k << " at step " << step;
      }
    }
  }
  EXPECT_GT(server.FindTablet("t")->num_store_files(), 1);
}

// ---------------------------------------------------------------------------
// Log append/scan differential property
// ---------------------------------------------------------------------------

TEST(LogDifferentialTest, ScannerReturnsExactlyWhatWasAppended) {
  MemFileSystem fs;
  log::LogWriter writer(&fs, "/log", 3, /*segment_bytes=*/4096);
  ASSERT_TRUE(writer.Open().ok());
  log::LogReader reader(&fs, "/log", 3);

  Random rnd(2024);
  std::deque<std::pair<std::string, log::LogPtr>> oracle;  // key + ptr
  for (int round = 0; round < 100; round++) {
    std::vector<log::LogRecord> batch;
    size_t batch_size = rnd.Uniform(8) + 1;
    for (size_t i = 0; i < batch_size; i++) {
      log::LogRecord record;
      record.type = rnd.Uniform(10) < 8 ? log::LogRecordType::kData
                                        : log::LogRecordType::kInvalidate;
      record.key.table_id = static_cast<uint32_t>(rnd.Uniform(4));
      record.row.primary_key =
          "key" + std::to_string(rnd.Uniform(1000));
      record.row.timestamp = round * 100 + i;
      record.value = std::string(rnd.Uniform(300), 'x');
      batch.push_back(record);
    }
    std::vector<log::LogPtr> ptrs;
    ASSERT_TRUE(writer.AppendBatch(&batch, &ptrs).ok());
    for (size_t i = 0; i < batch.size(); i++) {
      oracle.emplace_back(batch[i].row.primary_key, ptrs[i]);
    }
  }

  // Sequential scan sees every record, in order, with matching pointers.
  auto scanner = reader.NewScanner();
  ASSERT_TRUE(scanner.ok());
  size_t i = 0;
  for (; (*scanner)->Valid(); (*scanner)->Next(), i++) {
    ASSERT_LT(i, oracle.size());
    EXPECT_EQ((*scanner)->record().row.primary_key, oracle[i].first);
    EXPECT_EQ((*scanner)->ptr(), oracle[i].second);
  }
  EXPECT_EQ(i, oracle.size());
  EXPECT_TRUE((*scanner)->status().ok());

  // Random pointer fetches agree too.
  Random pick(9);
  for (int probe = 0; probe < 200; probe++) {
    const auto& [key, ptr] = oracle[pick.Uniform(oracle.size())];
    auto record = reader.Read(ptr);
    ASSERT_TRUE(record.ok());
    EXPECT_EQ(record->row.primary_key, key);
  }
}

// ---------------------------------------------------------------------------
// Histogram percentile invariants
// ---------------------------------------------------------------------------

TEST(HistogramPropertyTest, PercentilesMonotonicAndBounded) {
  Random rnd(31);
  Histogram h;
  for (int i = 0; i < 5000; i++) {
    h.Add(static_cast<double>(rnd.Uniform(1000000)));
  }
  double last = 0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    double v = h.Percentile(p);
    EXPECT_GE(v, last) << p;
    EXPECT_GE(v, h.min());
    EXPECT_LE(v, h.max());
    last = v;
  }
  EXPECT_GE(h.Average(), h.min());
  EXPECT_LE(h.Average(), h.max());
}

// ---------------------------------------------------------------------------
// Tuple reconstruction after adding a column group (§3.2 + DDL)
// ---------------------------------------------------------------------------

TEST(AddColumnGroupTest, RowSpansNewGroup) {
  cluster::MiniClusterOptions options;
  options.num_nodes = 3;
  cluster::MiniCluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(
      cluster.master()->CreateTable("t", {"a"}, {{"a"}}, {}).ok());
  auto client = cluster.NewClient(0);
  ASSERT_TRUE(client->PutRow("t", "row1", {{"a", "1"}}).ok());
  ASSERT_TRUE(cluster.master()->AddColumnGroup("t", {"b"}).ok());
  ASSERT_TRUE(client->PutRow("t", "row1", {{"b", "2"}}).ok());
  auto row = client->GetRow("t", "row1");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->at("a"), "1");
  EXPECT_EQ(row->at("b"), "2");
}

}  // namespace
}  // namespace logbase
