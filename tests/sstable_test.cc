// Tests for the sorted-table format: blocks, bloom filters, builder/reader,
// iterators and the block cache.

#include <gtest/gtest.h>

#include <map>

#include "src/sstable/block.h"
#include "src/sstable/block_builder.h"
#include "src/sstable/block_cache.h"
#include "src/sstable/bloom_filter.h"
#include "src/sstable/table_builder.h"
#include "src/sstable/table_reader.h"
#include "src/util/io.h"
#include "src/util/random.h"

namespace logbase::sstable {
namespace {

TEST(BlockTest, BuildAndIterate) {
  BlockBuilder builder(4);
  std::vector<std::pair<std::string, std::string>> entries;
  for (int i = 0; i < 50; i++) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%04d", i);
    entries.emplace_back(key, "value" + std::to_string(i));
    builder.Add(entries.back().first, entries.back().second);
  }
  Block block(builder.Finish().ToString());
  auto iter = block.NewIterator(BytewiseComparator());
  iter->SeekToFirst();
  for (const auto& [k, v] : entries) {
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(iter->key().ToString(), k);
    EXPECT_EQ(iter->value().ToString(), v);
    iter->Next();
  }
  EXPECT_FALSE(iter->Valid());
}

TEST(BlockTest, SeekSemantics) {
  BlockBuilder builder(3);
  for (int i = 0; i < 100; i += 10) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%03d", i);
    builder.Add(key, "v");
  }
  Block block(builder.Finish().ToString());
  auto iter = block.NewIterator(BytewiseComparator());
  iter->Seek("k035");
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), "k040");
  iter->Seek("k090");
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), "k090");
  iter->Seek("k999");
  EXPECT_FALSE(iter->Valid());
  iter->Seek("");  // before first
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), "k000");
}

TEST(BlockTest, PrefixCompressionShrinksBlock) {
  BlockBuilder compressed(16);
  BlockBuilder uncompressed(1);  // restart every entry = no sharing
  for (int i = 0; i < 100; i++) {
    char key[32];
    std::snprintf(key, sizeof(key), "commonprefix/%04d", i);
    compressed.Add(key, "v");
    uncompressed.Add(key, "v");
  }
  EXPECT_LT(compressed.CurrentSizeEstimate(),
            uncompressed.CurrentSizeEstimate());
}

TEST(BlockTest, EmptyBlockIterates) {
  BlockBuilder builder(16);
  Block block(builder.Finish().ToString());
  auto iter = block.NewIterator(BytewiseComparator());
  iter->SeekToFirst();
  EXPECT_FALSE(iter->Valid());
  iter->Seek("anything");
  EXPECT_FALSE(iter->Valid());
}

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilterBuilder builder(10);
  std::vector<std::string> keys;
  for (int i = 0; i < 1000; i++) {
    keys.push_back("bloomkey" + std::to_string(i));
    builder.AddKey(keys.back());
  }
  std::string data = builder.Finish();
  BloomFilterReader reader{Slice(data)};
  for (const std::string& key : keys) {
    EXPECT_TRUE(reader.MayContain(key));
  }
}

TEST(BloomFilterTest, LowFalsePositiveRate) {
  BloomFilterBuilder builder(10);
  for (int i = 0; i < 1000; i++) {
    builder.AddKey("present" + std::to_string(i));
  }
  std::string data = builder.Finish();
  BloomFilterReader reader{Slice(data)};
  int false_positives = 0;
  for (int i = 0; i < 10000; i++) {
    if (reader.MayContain("absent" + std::to_string(i))) false_positives++;
  }
  // 10 bits/key targets ~1%; allow slack.
  EXPECT_LT(false_positives, 300);
}

TEST(BloomFilterTest, MalformedFilterIsConservative) {
  BloomFilterReader reader{Slice("")};
  EXPECT_TRUE(reader.MayContain("anything"));
}

std::map<std::string, std::string> BuildEntries(int n) {
  std::map<std::string, std::string> entries;
  Random rnd(77);
  for (int i = 0; i < n; i++) {
    char key[24];
    std::snprintf(key, sizeof(key), "row%08d", i * 3);
    entries[key] = std::string(50 + rnd.Uniform(100), 'a' + (i % 26));
  }
  return entries;
}

struct TableFixture {
  MemFileSystem fs;
  std::unique_ptr<TableReader> reader;

  Status Build(const std::map<std::string, std::string>& entries,
               TableOptions options, BlockCache* cache = nullptr) {
    auto wf = fs.NewWritableFile("/table");
    LOGBASE_RETURN_NOT_OK(wf.status());
    TableBuilder builder(options, wf->get());
    for (const auto& [k, v] : entries) {
      LOGBASE_RETURN_NOT_OK(builder.Add(k, v));
    }
    LOGBASE_RETURN_NOT_OK(builder.Finish());
    auto rf = fs.NewRandomAccessFile("/table");
    LOGBASE_RETURN_NOT_OK(rf.status());
    auto opened = TableReader::Open(options, std::move(*rf), cache);
    LOGBASE_RETURN_NOT_OK(opened.status());
    reader = std::move(*opened);
    return Status::OK();
  }
};

TEST(TableTest, RoundTripSmall) {
  TableFixture t;
  auto entries = BuildEntries(100);
  ASSERT_TRUE(t.Build(entries, TableOptions()).ok());
  EXPECT_EQ(t.reader->num_entries(), 100u);
  auto iter = t.reader->NewIterator();
  iter->SeekToFirst();
  for (const auto& [k, v] : entries) {
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(iter->key().ToString(), k);
    EXPECT_EQ(iter->value().ToString(), v);
    iter->Next();
  }
  EXPECT_FALSE(iter->Valid());
}

class TableSizeTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Sizes, TableSizeTest,
                         ::testing::Values(1, 10, 500, 5000));

TEST_P(TableSizeTest, RoundTripAcrossManyBlocks) {
  TableFixture t;
  TableOptions options;
  options.block_size = 512;  // force many blocks
  auto entries = BuildEntries(GetParam());
  ASSERT_TRUE(t.Build(entries, options).ok());
  // Point-seek every key.
  for (const auto& [k, v] : entries) {
    std::string actual_key, value;
    ASSERT_TRUE(t.reader->SeekFirstGE(k, &actual_key, &value).ok());
    EXPECT_EQ(actual_key, k);
    EXPECT_EQ(value, v);
  }
}

TEST(TableTest, SeekBetweenKeysFindsSuccessor) {
  TableFixture t;
  auto entries = BuildEntries(1000);
  TableOptions options;
  options.block_size = 512;
  ASSERT_TRUE(t.Build(entries, options).ok());
  std::string actual_key, value;
  // "row00000001" is between row00000000 and row00000003.
  ASSERT_TRUE(t.reader->SeekFirstGE("row00000001", &actual_key, &value).ok());
  EXPECT_EQ(actual_key, "row00000003");
  // Past the last key.
  EXPECT_TRUE(t.reader->SeekFirstGE("zzz", &actual_key, &value).IsNotFound());
}

TEST(TableTest, BloomFilterScreensAbsentKeys) {
  TableFixture t;
  auto entries = BuildEntries(500);
  TableOptions options;
  ASSERT_TRUE(t.Build(entries, options).ok());
  for (const auto& [k, v] : entries) {
    EXPECT_TRUE(t.reader->MayContain(k));
  }
  int hits = 0;
  for (int i = 0; i < 1000; i++) {
    if (t.reader->MayContain("nope" + std::to_string(i))) hits++;
  }
  EXPECT_LT(hits, 100);
}

TEST(TableTest, CorruptionDetected) {
  MemFileSystem fs;
  TableOptions options;
  {
    auto wf = fs.NewWritableFile("/t");
    TableBuilder builder(options, wf->get());
    for (const auto& [k, v] : BuildEntries(200)) {
      ASSERT_TRUE(builder.Add(k, v).ok());
    }
    ASSERT_TRUE(builder.Finish().ok());
  }
  // Flip a byte in the middle of the data region.
  {
    auto rf = fs.NewRandomAccessFile("/t");
    auto all = (*rf)->Read(0, (*rf)->Size());
    (*all)[100] ^= 0xff;
    auto wf = fs.NewWritableFile("/t");  // truncate + rewrite corrupted
    ASSERT_TRUE((*wf)->Append(*all).ok());
  }
  auto rf = fs.NewRandomAccessFile("/t");
  auto reader = TableReader::Open(options, std::move(*rf), nullptr);
  if (reader.ok()) {
    auto iter = (*reader)->NewIterator();
    iter->SeekToFirst();
    while (iter->Valid()) iter->Next();
    EXPECT_TRUE(iter->status().IsCorruption());
  } else {
    EXPECT_TRUE(reader.status().IsCorruption());
  }
}

TEST(TableTest, TruncatedFileRejected) {
  MemFileSystem fs;
  auto wf = fs.NewWritableFile("/short");
  ASSERT_TRUE((*wf)->Append("tiny").ok());
  auto rf = fs.NewRandomAccessFile("/short");
  EXPECT_TRUE(
      TableReader::Open(TableOptions(), std::move(*rf), nullptr)
          .status()
          .IsCorruption());
}

TEST(BlockCacheTest, HitAndMissAccounting) {
  BlockCache cache(1 << 20);
  uint64_t id = cache.NewId();
  EXPECT_EQ(cache.Lookup(id, 0), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  cache.Insert(id, 0, std::make_shared<Block>(std::string(100, 'x')));
  EXPECT_NE(cache.Lookup(id, 0), nullptr);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(BlockCacheTest, EvictsLeastRecentlyUsed) {
  BlockCache cache(250);
  uint64_t id = cache.NewId();
  cache.Insert(id, 0, std::make_shared<Block>(std::string(100, 'a')));
  cache.Insert(id, 1, std::make_shared<Block>(std::string(100, 'b')));
  ASSERT_NE(cache.Lookup(id, 0), nullptr);  // touch 0: 1 becomes LRU
  cache.Insert(id, 2, std::make_shared<Block>(std::string(100, 'c')));
  EXPECT_EQ(cache.Lookup(id, 1), nullptr);  // evicted
  EXPECT_NE(cache.Lookup(id, 0), nullptr);
  EXPECT_NE(cache.Lookup(id, 2), nullptr);
}

TEST(BlockCacheTest, DistinctFileIdsDoNotCollide) {
  BlockCache cache(1 << 20);
  uint64_t a = cache.NewId();
  uint64_t b = cache.NewId();
  cache.Insert(a, 0, std::make_shared<Block>(std::string(10, 'a')));
  EXPECT_EQ(cache.Lookup(b, 0), nullptr);
}

TEST(TableTest, CachedReadsSkipFileAccess) {
  BlockCache cache(1 << 20);
  TableFixture t;
  TableOptions options;
  options.block_size = 512;
  ASSERT_TRUE(t.Build(BuildEntries(500), options, &cache).ok());
  std::string k, v;
  ASSERT_TRUE(t.reader->SeekFirstGE("row00000000", &k, &v).ok());
  uint64_t misses_before = cache.misses();
  ASSERT_TRUE(t.reader->SeekFirstGE("row00000000", &k, &v).ok());
  EXPECT_EQ(cache.misses(), misses_before);  // second read hits the cache
  EXPECT_GT(cache.hits(), 0u);
}

}  // namespace
}  // namespace logbase::sstable
