// Elastic load balancing (src/balance/): load reports, placement scoring,
// live log-based migration (checkpoint-bounded replay, fencing, client
// re-routing), hot-tablet splitting, the policy loop, and crash recovery of
// the migration/split protocols across master failovers.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/balance/balancer.h"
#include "src/balance/migration.h"
#include "src/balance/placement.h"
#include "src/cluster/mini_cluster.h"
#include "src/master/meta_codec.h"

namespace logbase::balance {
namespace {

cluster::MiniClusterOptions SmallCluster(int nodes = 3, int masters = 1) {
  cluster::MiniClusterOptions options;
  options.num_nodes = nodes;
  options.num_masters = masters;
  options.server_template.segment_bytes = 1 << 20;
  return options;
}

std::string Key(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "key%04d", i);
  return buf;
}

/// Tablets per server according to the master's assignment table.
std::map<int, int> CountsByServer(master::Master* m) {
  std::map<int, int> counts;
  for (const auto& [uid, location] : m->AssignmentsSnapshot()) {
    counts[location.server_id]++;
  }
  return counts;
}

TEST(PlacementTest, PickLeastLoadedOrdersByCountLoadThenId) {
  EXPECT_EQ(PickLeastLoaded({}), -1);
  // Fewest tablets wins regardless of load.
  EXPECT_EQ(PickLeastLoaded({{0, 3, 0.0}, {1, 1, 99.0}, {2, 2, 0.0}}), 1);
  // Equal counts: lowest load wins.
  EXPECT_EQ(PickLeastLoaded({{0, 2, 8.0}, {1, 2, 2.0}, {2, 2, 5.0}}), 1);
  // Full tie: lowest id.
  EXPECT_EQ(PickLeastLoaded({{2, 1, 1.0}, {0, 1, 1.0}, {1, 1, 1.0}}), 0);
}

TEST(PlacementTest, CountImbalance) {
  EXPECT_DOUBLE_EQ(CountImbalance({}), 0.0);
  EXPECT_DOUBLE_EQ(CountImbalance({{0, 2, 0}, {1, 2, 0}}), 1.0);
  EXPECT_DOUBLE_EQ(CountImbalance({{0, 4, 0}, {1, 0, 0}}), 2.0);
}

TEST(LoadReportTest, CollectDrainsPerTabletWindows) {
  cluster::MiniCluster cluster(SmallCluster());
  ASSERT_TRUE(cluster.Start().ok());
  auto schema =
      cluster.master()->CreateTable("t", {"v"}, {{"v"}}, {"key0050"});
  ASSERT_TRUE(schema.ok());
  auto client = cluster.NewClient(0);
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(client->Put("t", 0, Key(i), "x", {}).ok());  // left range
  }
  for (int i = 0; i < 5; i++) {
    ASSERT_TRUE(client->Put("t", 0, Key(60 + i), "x", {}).ok());  // right range
  }

  uint64_t writes = 0;
  std::map<std::string, uint64_t> by_uid;
  for (int node = 0; node < cluster.num_nodes(); node++) {
    LoadReport report = cluster.server(node)->CollectLoadReport();
    EXPECT_EQ(report.server_id, node);
    for (const TabletLoad& t : report.tablets) {
      writes += t.write_ops;
      by_uid[t.uid] += t.write_ops;
    }
  }
  EXPECT_EQ(writes, 25u);
  // Two distinct tablets saw writes, with the skew preserved.
  uint64_t max_tablet = 0;
  for (const auto& [uid, n] : by_uid) max_tablet = std::max(max_tablet, n);
  EXPECT_EQ(max_tablet, 20u);

  // The window drained: a second collect reports nothing.
  for (int node = 0; node < cluster.num_nodes(); node++) {
    LoadReport report = cluster.server(node)->CollectLoadReport();
    for (const TabletLoad& t : report.tablets) EXPECT_EQ(t.ops(), 0u);
  }
}

TEST(MigrationTest, MoveTabletKeepsDataAndRoutes) {
  cluster::MiniCluster cluster(SmallCluster());
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster.master()->CreateTable("t", {"v"}, {{"v"}}, {}).ok());
  auto client = cluster.NewClient(0);
  for (int i = 0; i < 30; i++) {
    ASSERT_TRUE(client->Put("t", 0, Key(i), "v" + std::to_string(i), {}).ok());
  }

  auto loc = cluster.master()->Locate("t", 0, Slice(Key(0)));
  ASSERT_TRUE(loc.ok());
  const std::string uid = loc->descriptor.uid();
  const int from = loc->server_id;
  const int to = (from + 1) % cluster.num_nodes();

  MigrationCoordinator coordinator(cluster.active_master());
  ASSERT_TRUE(coordinator.MigrateTablet(uid, to).ok());

  // Assignment flipped and persisted; old owner released the tablet.
  auto moved = cluster.master()->GetAssignment(uid);
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(moved->server_id, to);
  EXPECT_EQ(cluster.server(from)->FindTablet(uid), nullptr);
  ASSERT_NE(cluster.server(to)->FindTablet(uid), nullptr);
  EXPECT_FALSE(cluster.server(to)->FindTablet(uid)->sealed());
  // The intent is gone.
  EXPECT_FALSE(cluster.coord()->znodes()->Exists(
      master::meta::MigratePath(uid)));

  // The same client (stale route cached) reads and writes through the
  // migrated tablet: the source's "unknown tablet" turns into a cache
  // invalidation + retry.
  for (int i = 0; i < 30; i++) {
    auto r = client->Get("t", 0, Key(i), client::ReadOptions{});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_TRUE(r->found());
    EXPECT_EQ(r->value(), "v" + std::to_string(i));
  }
  EXPECT_TRUE(client->Put("t", 0, Key(1), "after-move", {}).ok());
}

TEST(MigrationTest, ReplayIsCheckpointBounded) {
  cluster::MiniCluster cluster(SmallCluster());
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster.master()->CreateTable("t", {"v"}, {{"v"}}, {}).ok());
  auto client = cluster.NewClient(0);
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(client->Put("t", 0, Key(i), "x", {}).ok());
  }
  auto loc = cluster.master()->Locate("t", 0, Slice(Key(0)));
  ASSERT_TRUE(loc.ok());
  ASSERT_TRUE(cluster.server(loc->server_id)->Checkpoint().ok());
  for (int i = 100; i < 115; i++) {
    ASSERT_TRUE(client->Put("t", 0, Key(i), "x", {}).ok());
  }

  // Adopt on another server directly: replay must cover only the log tail
  // past the checkpoint, not the whole history.
  const int to = (loc->server_id + 1) % cluster.num_nodes();
  tablet::RecoveryStats stats;
  ASSERT_TRUE(cluster.server(to)
                  ->AdoptTablet(loc->descriptor,
                                static_cast<uint32_t>(loc->server_id), &stats)
                  .ok());
  EXPECT_TRUE(stats.loaded_checkpoint);
  EXPECT_GE(stats.checkpoint_entries, 100u);
  EXPECT_GE(stats.redo_records, 15u);
  EXPECT_LT(stats.redo_records, 100u);
  (void)cluster.server(to)->CloseTablet(loc->descriptor.uid());
}

TEST(MigrationTest, SealedTabletRejectsWritesUntilUnsealed) {
  cluster::MiniCluster cluster(SmallCluster());
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster.master()->CreateTable("t", {"v"}, {{"v"}}, {}).ok());
  auto loc = cluster.master()->Locate("t", 0, Slice(Key(0)));
  ASSERT_TRUE(loc.ok());
  tablet::TabletServer* server = cluster.server(loc->server_id);
  const std::string uid = loc->descriptor.uid();

  ASSERT_TRUE(server->Put(uid, Slice(Key(0)), Slice("pre")).ok());
  ASSERT_TRUE(server->SealTablet(uid).ok());
  Status s = server->Put(uid, Slice(Key(0)), Slice("x"));
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_NE(s.ToString().find("tablet sealed"), std::string::npos);
  // Reads still serve while sealed (the handover window is read-available).
  auto read = server->Get(uid, Slice(Key(0)));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->value, "pre");
  ASSERT_TRUE(server->UnsealTablet(uid).ok());
  EXPECT_TRUE(server->Put(uid, Slice(Key(0)), Slice("x")).ok());
}

TEST(SplitTest, SplitPreservesDataAndScans) {
  cluster::MiniCluster cluster(SmallCluster());
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster.master()->CreateTable("t", {"v"}, {{"v"}}, {}).ok());
  auto client = cluster.NewClient(0);
  for (int i = 0; i < 60; i++) {
    ASSERT_TRUE(client->Put("t", 0, Key(i), "v" + std::to_string(i), {}).ok());
  }
  auto loc = cluster.master()->Locate("t", 0, Slice(Key(0)));
  ASSERT_TRUE(loc.ok());
  const std::string parent_uid = loc->descriptor.uid();
  auto split_key = cluster.server(loc->server_id)->SuggestSplitKey(parent_uid);
  ASSERT_TRUE(split_key.ok());

  const int right_target = (loc->server_id + 1) % cluster.num_nodes();
  MigrationCoordinator coordinator(cluster.active_master());
  ASSERT_TRUE(
      coordinator.SplitTablet(parent_uid, *split_key, right_target).ok());

  // Parent assignment replaced by two children covering the halves.
  EXPECT_FALSE(cluster.master()->GetAssignment(parent_uid).ok());
  auto all = cluster.master()->LocateAll("t", 0);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 2u);
  EXPECT_EQ((*all)[0].descriptor.end_key, *split_key);
  EXPECT_EQ((*all)[1].descriptor.start_key, *split_key);
  EXPECT_EQ((*all)[1].server_id, right_target);

  // Every row reads back; a full scan sees all 60 across both children.
  for (int i = 0; i < 60; i++) {
    auto r = client->Get("t", 0, Key(i), client::ReadOptions{});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_TRUE(r->found()) << Key(i);
    EXPECT_EQ(r->value(), "v" + std::to_string(i));
  }
  auto rows = client->Scan("t", 0, "", "", client::ReadOptions{});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 60u);
  // Writes land on the correct child and survive.
  ASSERT_TRUE(client->Put("t", 0, Key(5), "post-split", {}).ok());
  ASSERT_TRUE(client->Put("t", 0, Key(55), "post-split", {}).ok());
}

TEST(SplitTest, SplitSurvivesServerRestart) {
  cluster::MiniCluster cluster(SmallCluster());
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster.master()->CreateTable("t", {"v"}, {{"v"}}, {}).ok());
  auto client = cluster.NewClient(0);
  for (int i = 0; i < 40; i++) {
    ASSERT_TRUE(client->Put("t", 0, Key(i), "v" + std::to_string(i), {}).ok());
  }
  auto loc = cluster.master()->Locate("t", 0, Slice(Key(0)));
  ASSERT_TRUE(loc.ok());
  const std::string parent_uid = loc->descriptor.uid();
  const int owner = loc->server_id;
  auto split_key = cluster.server(owner)->SuggestSplitKey(parent_uid);
  ASSERT_TRUE(split_key.ok());
  const int right_target = (owner + 1) % cluster.num_nodes();
  MigrationCoordinator coordinator(cluster.active_master());
  ASSERT_TRUE(
      coordinator.SplitTablet(parent_uid, *split_key, right_target).ok());
  // Post-split writes that only the children's recovery can replay.
  ASSERT_TRUE(client->Put("t", 0, Key(2), "post-split", {}).ok());
  ASSERT_TRUE(client->Put("t", 0, Key(38), "post-split", {}).ok());

  cluster.CrashServer(owner);
  cluster.CrashServer(right_target);
  ASSERT_TRUE(cluster.RestartServer(owner).ok());
  ASSERT_TRUE(cluster.RestartServer(right_target).ok());

  // The parent must not resurrect next to its children.
  for (int node : {owner, right_target}) {
    for (const tablet::TabletDescriptor& d : cluster.server(node)->Tablets()) {
      EXPECT_NE(d.uid(), parent_uid);
    }
  }
  auto r = client->Get("t", 0, Key(2), client::ReadOptions{});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->value(), "post-split");
  r = client->Get("t", 0, Key(38), client::ReadOptions{});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->value(), "post-split");
  auto rows = client->Scan("t", 0, "", "", client::ReadOptions{});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 40u);
}

TEST(BalancerTest, MigratesLoadOffHotServer) {
  cluster::MiniClusterOptions options = SmallCluster();
  options.balancer.enable_splits = false;
  cluster::MiniCluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(
      cluster.master()->CreateTable("t", {"v"}, {{"v"}}, {"key0050"}).ok());
  auto client = cluster.NewClient(0);
  // All traffic on the left range: its server becomes the hot spot.
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(client->Put("t", 0, Key(i % 50), "x", {}).ok());
  }
  auto hot_loc = cluster.master()->Locate("t", 0, Slice(Key(0)));
  ASSERT_TRUE(hot_loc.ok());

  ASSERT_TRUE(cluster.balancer()->Tick().ok());
  EXPECT_EQ(cluster.balancer()->stats().migrations, 1u);

  auto moved = cluster.master()->GetAssignment(hot_loc->descriptor.uid());
  ASSERT_TRUE(moved.ok());
  EXPECT_NE(moved->server_id, hot_loc->server_id);
  // Data survives the move.
  auto r = client->Get("t", 0, Key(3), client::ReadOptions{});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->found());
}

TEST(BalancerTest, SplitsDominantTablet) {
  cluster::MiniCluster cluster(SmallCluster());
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster.master()->CreateTable("t", {"v"}, {{"v"}}, {}).ok());
  auto client = cluster.NewClient(0);
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(client->Put("t", 0, Key(i % 80), "x", {}).ok());
  }
  ASSERT_TRUE(cluster.balancer()->Tick().ok());
  EXPECT_EQ(cluster.balancer()->stats().splits, 1u);
  auto all = cluster.master()->LocateAll("t", 0);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 2u);
  // The two halves ended up on different servers — that was the point.
  EXPECT_NE((*all)[0].server_id, (*all)[1].server_id);
  for (int i = 0; i < 80; i++) {
    auto r = client->Get("t", 0, Key(i), client::ReadOptions{});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->found());
  }
}

TEST(BalancerTest, NoopWhenBalancedOrCold) {
  cluster::MiniCluster cluster(SmallCluster());
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster.master()
                  ->CreateTable("t", {"v"}, {{"v"}}, {"key0033", "key0066"})
                  .ok());
  // Cold cluster: no ops at all.
  ASSERT_TRUE(cluster.balancer()->Tick().ok());
  EXPECT_EQ(cluster.balancer()->stats().migrations, 0u);
  EXPECT_EQ(cluster.balancer()->stats().splits, 0u);

  // Evenly loaded: still no action.
  auto client = cluster.NewClient(0);
  for (int i = 0; i < 300; i++) {
    ASSERT_TRUE(client->Put("t", 0, Key(i % 100), "x", {}).ok());
  }
  ASSERT_TRUE(cluster.balancer()->Tick().ok());
  EXPECT_EQ(cluster.balancer()->stats().migrations, 0u);
  EXPECT_EQ(cluster.balancer()->stats().splits, 0u);
}

// Crash the active master after a chosen protocol step; the standby must
// reconcile the surviving intent to exactly one owner.
class FailoverMidMigrationTest
    : public ::testing::TestWithParam<MigrationStep> {};

TEST_P(FailoverMidMigrationTest, StandbyReconcilesToOneOwner) {
  const MigrationStep crash_after = GetParam();
  cluster::MiniCluster cluster(SmallCluster(3, /*masters=*/2));
  ASSERT_TRUE(cluster.Start().ok());
  master::Master* first = cluster.active_master();
  ASSERT_EQ(first, cluster.masters(0));
  ASSERT_TRUE(first->CreateTable("t", {"v"}, {{"v"}}, {}).ok());
  auto client = cluster.NewClient(0);
  for (int i = 0; i < 25; i++) {
    ASSERT_TRUE(client->Put("t", 0, Key(i), "v" + std::to_string(i), {}).ok());
  }
  auto loc = first->Locate("t", 0, Slice(Key(0)));
  ASSERT_TRUE(loc.ok());
  const std::string uid = loc->descriptor.uid();
  const int from = loc->server_id;
  const int to = (from + 1) % cluster.num_nodes();

  MigrationCoordinator coordinator(first);
  coordinator.set_step_hook([&](MigrationStep step) {
    if (step == crash_after) cluster.CrashMaster(0);
  });
  Status s = coordinator.MigrateTablet(uid, to);
  EXPECT_FALSE(s.ok());  // leadership lost mid-protocol

  // Standby takes over and reconciles the intent.
  master::Master* active = cluster.active_master();
  ASSERT_NE(active, nullptr);
  ASSERT_EQ(active, cluster.masters(1));

  const bool committed = crash_after >= MigrationStep::kAssignmentFlipped;
  auto assignment = active->GetAssignment(uid);
  ASSERT_TRUE(assignment.ok());
  EXPECT_EQ(assignment->server_id, committed ? to : from);
  // Exactly one live owner hosts the tablet, unsealed; the intent is gone.
  const int owner = assignment->server_id;
  const int other = owner == from ? to : from;
  ASSERT_NE(cluster.server(owner)->FindTablet(uid), nullptr);
  EXPECT_FALSE(cluster.server(owner)->FindTablet(uid)->sealed());
  EXPECT_EQ(cluster.server(other)->FindTablet(uid), nullptr);
  EXPECT_FALSE(cluster.coord()->znodes()->Exists(
      master::meta::MigratePath(uid)));

  // No acked write was lost, and new writes flow.
  for (int i = 0; i < 25; i++) {
    auto r = client->Get("t", 0, Key(i), client::ReadOptions{});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_TRUE(r->found());
    EXPECT_EQ(r->value(), "v" + std::to_string(i));
  }
  EXPECT_TRUE(client->Put("t", 0, Key(0), "post-failover", {}).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Steps, FailoverMidMigrationTest,
    ::testing::Values(MigrationStep::kIntentPersisted,
                      MigrationStep::kSourceSealed,
                      MigrationStep::kCheckpointFlushed,
                      MigrationStep::kDestAdopted,
                      MigrationStep::kAssignmentFlipped,
                      MigrationStep::kSourceClosed),
    [](const ::testing::TestParamInfo<MigrationStep>& info) {
      std::string name = MigrationStepName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(FailoverScatterTest, DeadServersTabletsSpreadAcrossSurvivors) {
  cluster::MiniCluster cluster(SmallCluster(5));
  ASSERT_TRUE(cluster.Start().ok());
  std::vector<std::string> splits;
  for (int i = 1; i < 10; i++) splits.push_back(Key(i * 10));
  ASSERT_TRUE(
      cluster.master()->CreateTable("t", {"v"}, {{"v"}}, splits).ok());
  // 10 ranges over 5 servers: 2 tablets each.
  auto before = CountsByServer(cluster.master());
  ASSERT_EQ(before.size(), 5u);
  for (const auto& [server, count] : before) EXPECT_EQ(count, 2);

  auto client = cluster.NewClient(0);
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(client->Put("t", 0, Key(i), "x", {}).ok());
  }

  cluster.CrashServer(4);
  auto handled = cluster.master()->DetectAndHandleFailures();
  ASSERT_TRUE(handled.ok());
  EXPECT_EQ(*handled, 1);

  // The dead server's two tablets scattered to two *different* survivors
  // (round-robin from a fixed origin would also do this, but load-scored
  // placement must: each adoption bumps the target's count).
  auto after = CountsByServer(cluster.master());
  EXPECT_EQ(after.count(4), 0u);
  int total = 0;
  int max_count = 0;
  for (const auto& [server, count] : after) {
    total += count;
    max_count = std::max(max_count, count);
  }
  EXPECT_EQ(total, 10);
  EXPECT_EQ(max_count, 3);  // 3,3,2,2 — not 4,2,2,2

  for (int i = 0; i < 100; i++) {
    auto r = client->Get("t", 0, Key(i), client::ReadOptions{});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->found());
  }
}

TEST(PlacementAwareMasterTest, NewTablesAvoidLoadedServers) {
  cluster::MiniCluster cluster(SmallCluster());
  ASSERT_TRUE(cluster.Start().ok());
  // Three single-tablet tables land on three different servers (the old
  // modulo placement would have stacked them all on server 0).
  std::set<int> used;
  for (const std::string& name : {"a", "b", "c"}) {
    ASSERT_TRUE(cluster.master()->CreateTable(name, {"v"}, {{"v"}}, {}).ok());
    auto all = cluster.master()->LocateAll(name, 0);
    ASSERT_TRUE(all.ok());
    ASSERT_EQ(all->size(), 1u);
    used.insert((*all)[0].server_id);
  }
  EXPECT_EQ(used.size(), 3u);
}

TEST(PlacementAwareMasterTest, AddColumnGroupColocatesWithExistingRanges) {
  cluster::MiniCluster cluster(SmallCluster());
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster.master()
                  ->CreateTable("t", {"a", "b"}, {{"a"}}, {"key0050"})
                  .ok());
  ASSERT_TRUE(cluster.master()->AddColumnGroup("t", {"b"}).ok());
  auto g0 = cluster.master()->LocateAll("t", 0);
  auto g1 = cluster.master()->LocateAll("t", 1);
  ASSERT_TRUE(g0.ok());
  ASSERT_TRUE(g1.ok());
  ASSERT_EQ(g0->size(), g1->size());
  for (size_t i = 0; i < g0->size(); i++) {
    EXPECT_EQ((*g0)[i].server_id, (*g1)[i].server_id);
  }
}

}  // namespace
}  // namespace logbase::balance
