// Tests for MVOCC transactions (paper §3.7): snapshot isolation semantics
// (every ANSI anomaly except write skew prevented), validation with ordered
// write locks, read-only fast path, 2PC across servers, and crash atomicity.

#include <gtest/gtest.h>

#include "src/cluster/mini_cluster.h"
#include "src/dfs/dfs.h"
#include "src/tablet/tablet_server.h"
#include "src/txn/lock_table.h"
#include "src/txn/transaction_manager.h"

namespace logbase::txn {
namespace {

using tablet::TabletDescriptor;
using tablet::TabletServer;
using tablet::TabletServerOptions;

struct TxnFixture {
  dfs::Dfs dfs{[] {
    dfs::DfsOptions o;
    o.num_nodes = 3;
    return o;
  }()};
  coord::CoordinationService coord;
  std::vector<std::unique_ptr<TabletServer>> servers;
  std::unique_ptr<TransactionManager> manager;
  std::string uid0, uid1;  // tablets on server 0 and server 1

  explicit TxnFixture(int num_servers = 2) {
    for (int i = 0; i < num_servers; i++) {
      TabletServerOptions options;
      options.server_id = i;
      servers.push_back(
          std::make_unique<TabletServer>(options, &dfs, &coord));
      EXPECT_TRUE(servers.back()->Start().ok());
    }
    TabletDescriptor d0;
    d0.table_id = 1;
    d0.range_id = 0;
    uid0 = d0.uid();
    EXPECT_TRUE(servers[0]->OpenTablet(d0).ok());
    if (num_servers > 1) {
      TabletDescriptor d1;
      d1.table_id = 1;
      d1.range_id = 1;
      uid1 = d1.uid();
      EXPECT_TRUE(servers[1]->OpenTablet(d1).ok());
    }
    manager = std::make_unique<TransactionManager>(
        &coord, /*client_node=*/0, [this](const std::string& uid) {
          for (auto& server : servers) {
            if (server->FindTablet(uid) != nullptr) return server.get();
          }
          return static_cast<TabletServer*>(nullptr);
        });
  }
};

TEST(TxnTest, CommitMakesWritesVisible) {
  TxnFixture f;
  auto txn = f.manager->Begin();
  ASSERT_TRUE(f.manager->Write(txn.get(), f.uid0, "k", "committed").ok());
  ASSERT_TRUE(f.manager->Commit(txn.get()).ok());
  EXPECT_EQ(txn->state(), Transaction::State::kCommitted);
  EXPECT_EQ(f.servers[0]->Get(f.uid0, "k")->value, "committed");
}

TEST(TxnTest, UncommittedWritesInvisible) {
  TxnFixture f;
  auto txn = f.manager->Begin();
  ASSERT_TRUE(f.manager->Write(txn.get(), f.uid0, "k", "pending").ok());
  // Before commit: not visible to direct reads.
  EXPECT_TRUE(f.servers[0]->Get(f.uid0, "k").status().IsNotFound());
  f.manager->Abort(txn.get());
  EXPECT_TRUE(f.servers[0]->Get(f.uid0, "k").status().IsNotFound());
  EXPECT_EQ(txn->state(), Transaction::State::kAborted);
}

TEST(TxnTest, ReadYourOwnWrites) {
  TxnFixture f;
  auto txn = f.manager->Begin();
  ASSERT_TRUE(f.manager->Write(txn.get(), f.uid0, "k", "mine").ok());
  auto read = f.manager->Read(txn.get(), f.uid0, "k");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "mine");
  f.manager->Abort(txn.get());
}

TEST(TxnTest, ReadOnlyAlwaysCommits) {
  TxnFixture f;
  ASSERT_TRUE(f.servers[0]->Put(f.uid0, "k", "v").ok());
  // Even with a concurrent writer on the same key.
  auto reader = f.manager->Begin();
  auto writer = f.manager->Begin();
  ASSERT_TRUE(f.manager->Write(writer.get(), f.uid0, "k", "v2").ok());
  ASSERT_TRUE(f.manager->Commit(writer.get()).ok());
  ASSERT_TRUE(f.manager->Read(reader.get(), f.uid0, "k").ok());
  EXPECT_TRUE(f.manager->Commit(reader.get()).ok());
  EXPECT_EQ(f.manager->stats().committed.load(), 2u);
}

TEST(TxnTest, SnapshotReadsIgnoreLaterCommits) {
  TxnFixture f;
  ASSERT_TRUE(f.servers[0]->Put(f.uid0, "k", "original").ok());
  auto old_txn = f.manager->Begin();  // snapshot fixed here

  auto writer = f.manager->Begin();
  ASSERT_TRUE(f.manager->Write(writer.get(), f.uid0, "k", "newer").ok());
  ASSERT_TRUE(f.manager->Commit(writer.get()).ok());

  // Fuzzy read prevented: old_txn still sees the original.
  auto read = f.manager->Read(old_txn.get(), f.uid0, "k");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "original");
  EXPECT_TRUE(f.manager->Commit(old_txn.get()).ok());
}

TEST(TxnTest, LostUpdatePrevented) {
  TxnFixture f;
  ASSERT_TRUE(f.servers[0]->Put(f.uid0, "counter", "10").ok());
  auto t1 = f.manager->Begin();
  auto t2 = f.manager->Begin();
  // Both read-modify-write the same record concurrently.
  ASSERT_TRUE(f.manager->Read(t1.get(), f.uid0, "counter").ok());
  ASSERT_TRUE(f.manager->Read(t2.get(), f.uid0, "counter").ok());
  ASSERT_TRUE(f.manager->Write(t1.get(), f.uid0, "counter", "11").ok());
  ASSERT_TRUE(f.manager->Write(t2.get(), f.uid0, "counter", "11").ok());
  ASSERT_TRUE(f.manager->Commit(t1.get()).ok());
  // First committer wins; the second must abort on validation.
  Status second = f.manager->Commit(t2.get());
  EXPECT_TRUE(second.IsAborted());
  EXPECT_EQ(f.manager->stats().validation_failures.load(), 1u);
}

TEST(TxnTest, WriteSkewPermitted) {
  // SI's known anomaly (paper Figure 5): disjoint write sets with crossed
  // reads both commit.
  TxnFixture f;
  ASSERT_TRUE(f.servers[0]->Put(f.uid0, "x", "1").ok());
  ASSERT_TRUE(f.servers[0]->Put(f.uid0, "y", "1").ok());
  auto t1 = f.manager->Begin();
  auto t2 = f.manager->Begin();
  ASSERT_TRUE(f.manager->Read(t1.get(), f.uid0, "x").ok());
  ASSERT_TRUE(f.manager->Read(t2.get(), f.uid0, "y").ok());
  ASSERT_TRUE(f.manager->Write(t1.get(), f.uid0, "y", "0").ok());
  ASSERT_TRUE(f.manager->Write(t2.get(), f.uid0, "x", "0").ok());
  EXPECT_TRUE(f.manager->Commit(t1.get()).ok());
  EXPECT_TRUE(f.manager->Commit(t2.get()).ok());  // write skew: allowed
}

TEST(TxnTest, DirtyWritePrevented) {
  TxnFixture f;
  ASSERT_TRUE(f.servers[0]->Put(f.uid0, "k", "base").ok());
  auto t1 = f.manager->Begin();
  auto t2 = f.manager->Begin();
  ASSERT_TRUE(f.manager->Write(t1.get(), f.uid0, "k", "one").ok());
  ASSERT_TRUE(f.manager->Write(t2.get(), f.uid0, "k", "two").ok());
  ASSERT_TRUE(f.manager->Commit(t1.get()).ok());
  EXPECT_TRUE(f.manager->Commit(t2.get()).IsAborted());
  EXPECT_EQ(f.servers[0]->Get(f.uid0, "k")->value, "one");
}

TEST(TxnTest, TransactionalDelete) {
  TxnFixture f;
  ASSERT_TRUE(f.servers[0]->Put(f.uid0, "k", "v").ok());
  auto txn = f.manager->Begin();
  ASSERT_TRUE(f.manager->Delete(txn.get(), f.uid0, "k").ok());
  // Own delete visible inside the transaction.
  EXPECT_TRUE(f.manager->Read(txn.get(), f.uid0, "k").status().IsNotFound());
  // Still visible outside until commit.
  EXPECT_TRUE(f.servers[0]->Get(f.uid0, "k").ok());
  ASSERT_TRUE(f.manager->Commit(txn.get()).ok());
  EXPECT_TRUE(f.servers[0]->Get(f.uid0, "k").status().IsNotFound());
}

TEST(TxnTest, MultiServerTransactionCommitsAtomically) {
  TxnFixture f;
  auto txn = f.manager->Begin();
  ASSERT_TRUE(f.manager->Write(txn.get(), f.uid0, "left", "L").ok());
  ASSERT_TRUE(f.manager->Write(txn.get(), f.uid1, "right", "R").ok());
  ASSERT_TRUE(f.manager->Commit(txn.get()).ok());
  EXPECT_EQ(f.servers[0]->Get(f.uid0, "left")->value, "L");
  EXPECT_EQ(f.servers[1]->Get(f.uid1, "right")->value, "R");
  // Same commit timestamp on both participants (global order, §3.7.1).
  EXPECT_EQ(f.servers[0]->Get(f.uid0, "left")->timestamp,
            f.servers[1]->Get(f.uid1, "right")->timestamp);
}

TEST(TxnTest, MultiServerAbortLeavesNothingVisible) {
  TxnFixture f;
  ASSERT_TRUE(f.servers[0]->Put(f.uid0, "contended", "v0").ok());
  auto t1 = f.manager->Begin();
  ASSERT_TRUE(f.manager->Read(t1.get(), f.uid0, "contended").ok());
  ASSERT_TRUE(f.manager->Write(t1.get(), f.uid0, "contended", "t1").ok());
  ASSERT_TRUE(f.manager->Write(t1.get(), f.uid1, "other", "t1").ok());
  // A conflicting single-server commit invalidates t1.
  auto t2 = f.manager->Begin();
  ASSERT_TRUE(f.manager->Write(t2.get(), f.uid0, "contended", "t2").ok());
  ASSERT_TRUE(f.manager->Commit(t2.get()).ok());
  EXPECT_TRUE(f.manager->Commit(t1.get()).IsAborted());
  // Neither of t1's writes landed.
  EXPECT_EQ(f.servers[0]->Get(f.uid0, "contended")->value, "t2");
  EXPECT_TRUE(f.servers[1]->Get(f.uid1, "other").status().IsNotFound());
}

TEST(TxnTest, CommittedTransactionSurvivesCrashRecovery) {
  TxnFixture f;
  auto txn = f.manager->Begin();
  ASSERT_TRUE(f.manager->Write(txn.get(), f.uid0, "durable", "yes").ok());
  ASSERT_TRUE(f.manager->Commit(txn.get()).ok());
  f.servers[0]->Crash();
  ASSERT_TRUE(f.servers[0]->Start().ok());
  EXPECT_EQ(f.servers[0]->Get(f.uid0, "durable")->value, "yes");
}

TEST(TxnTest, CompactionDropsUncommittedTxnData) {
  // Simulate a transaction that persisted data records but crashed before
  // its COMMIT record: compaction must reclaim them.
  TxnFixture f(1);
  log::LogRecord orphan;
  orphan.type = log::LogRecordType::kData;
  orphan.key.table_id = 1;
  orphan.key.tablet_id = 0;
  orphan.txn_id = 999;  // no commit record will ever exist
  orphan.row.primary_key = "orphan";
  orphan.row.timestamp = 12345;
  orphan.value = "ghost";
  std::vector<log::LogRecord> batch{orphan};
  ASSERT_TRUE(f.servers[0]->AppendBatch(&batch).ok());
  ASSERT_TRUE(f.servers[0]->Put(f.uid0, "real", "v").ok());

  tablet::CompactionStats stats;
  ASSERT_TRUE(f.servers[0]->CompactLog({}, &stats).ok());
  EXPECT_EQ(stats.dropped_uncommitted, 1u);
  EXPECT_TRUE(f.servers[0]->Get(f.uid0, "orphan").status().IsNotFound());
  EXPECT_TRUE(f.servers[0]->Get(f.uid0, "real").ok());
}

TEST(TxnTest, UncommittedTxnDataIgnoredByRecovery) {
  TxnFixture f(1);
  log::LogRecord orphan;
  orphan.type = log::LogRecordType::kData;
  orphan.key.table_id = 1;
  orphan.key.tablet_id = 0;
  orphan.txn_id = 777;
  orphan.row.primary_key = "phantom";
  orphan.row.timestamp = 1;
  orphan.value = "boo";
  std::vector<log::LogRecord> batch{orphan};
  ASSERT_TRUE(f.servers[0]->AppendBatch(&batch).ok());
  f.servers[0]->Crash();
  ASSERT_TRUE(f.servers[0]->Start().ok());
  EXPECT_TRUE(f.servers[0]->Get(f.uid0, "phantom").status().IsNotFound());
}

TEST(TxnTest, SerializableModeAbortsWriteSkew) {
  TxnFixture f(1);
  txn::TransactionManagerOptions serializable;
  serializable.serializable = true;
  TransactionManager strict(
      &f.coord, 0,
      [&f](const std::string& uid) {
        return f.servers[0]->FindTablet(uid) != nullptr ? f.servers[0].get()
                                                        : nullptr;
      },
      serializable);
  ASSERT_TRUE(f.servers[0]->Put(f.uid0, "x", "1").ok());
  ASSERT_TRUE(f.servers[0]->Put(f.uid0, "y", "1").ok());
  auto t1 = strict.Begin();
  auto t2 = strict.Begin();
  ASSERT_TRUE(strict.Read(t1.get(), f.uid0, "x").ok());
  ASSERT_TRUE(strict.Read(t2.get(), f.uid0, "y").ok());
  ASSERT_TRUE(strict.Write(t1.get(), f.uid0, "y", "0").ok());
  ASSERT_TRUE(strict.Write(t2.get(), f.uid0, "x", "0").ok());
  EXPECT_TRUE(strict.Commit(t1.get()).ok());
  // Under the §3.7.1 serializable option the rw-antidependency is caught:
  // t2's read of y was invalidated by t1's committed write.
  EXPECT_TRUE(strict.Commit(t2.get()).IsAborted());
}

TEST(TxnTest, SerializableReadOnlyStillCommitsWithoutLocks) {
  TxnFixture f(1);
  txn::TransactionManagerOptions serializable;
  serializable.serializable = true;
  TransactionManager strict(
      &f.coord, 0,
      [&f](const std::string& uid) {
        return f.servers[0]->FindTablet(uid) != nullptr ? f.servers[0].get()
                                                        : nullptr;
      },
      serializable);
  ASSERT_TRUE(f.servers[0]->Put(f.uid0, "k", "v").ok());
  auto reader = strict.Begin();
  ASSERT_TRUE(strict.Read(reader.get(), f.uid0, "k").ok());
  // A concurrent writer does not abort the read-only transaction.
  ASSERT_TRUE(f.servers[0]->Put(f.uid0, "k", "v2").ok());
  EXPECT_TRUE(strict.Commit(reader.get()).ok());
}

TEST(OrderedLockSetTest, AcquiresAndReleases) {
  coord::CoordinationService coord;
  coord::LockManager locks(&coord);
  coord::SessionId s = coord.CreateSession(0);
  {
    OrderedLockSet set(&locks, s, "txn-1", 0);
    ASSERT_TRUE(set.AcquireAll({{"t", "b"}, {"t", "a"}, {"t", "b"}}).ok());
    EXPECT_TRUE(set.holds_all());
    // Another owner cannot take them meanwhile.
    OrderedLockSet other(&locks, s, "txn-2", 0);
    EXPECT_FALSE(other.AcquireAll({{"t", "a"}}, /*max_attempts=*/3).ok());
  }
  // RAII released: now acquirable.
  OrderedLockSet after(&locks, s, "txn-3", 0);
  EXPECT_TRUE(after.AcquireAll({{"t", "a"}, {"t", "b"}}).ok());
}

TEST(OrderedLockSetTest, StatsCountLockFailures) {
  TxnFixture f(1);
  // Hold a lock out-of-band so the transaction cannot acquire it.
  coord::LockManager locks(&f.coord);
  coord::SessionId s = f.coord.CreateSession(0);
  std::string lock_name = f.uid0;
  lock_name.push_back('\0');
  lock_name += "blocked";
  ASSERT_TRUE(locks.TryLock(s, Slice(lock_name), "outsider", 0));

  auto txn = f.manager->Begin();
  ASSERT_TRUE(f.manager->Write(txn.get(), f.uid0, "blocked", "v").ok());
  EXPECT_TRUE(f.manager->Commit(txn.get()).IsAborted());
  EXPECT_EQ(f.manager->stats().lock_failures.load(), 1u);
}

// The RAII client::Txn handle: dropping it without Commit must abort the
// transaction and leave no trace — writes invisible, no locks or validation
// state held that would block a later transaction on the same keys.
TEST(ClientTxnTest, DroppedHandleAutoAborts) {
  cluster::MiniClusterOptions options;
  cluster::MiniCluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(
      cluster.master()->CreateTable("t", {"c"}, {{"c"}}, {"key5"}).ok());
  auto client = cluster.NewClient(0);
  ASSERT_TRUE(client->Put("t", 0, "key1", "committed", {}).ok());

  uint64_t aborted_before =
      obs::MetricsRegistry::Global().counter("txn.aborted")->value();
  {
    client::Txn txn = client->BeginTxn();
    EXPECT_TRUE(txn.active());
    ASSERT_TRUE(txn.Write("t", 0, "key1", "abandoned").ok());
    ASSERT_TRUE(txn.Write("t", 0, "key2", "abandoned").ok());
    ASSERT_EQ(txn.raw()->state(), Transaction::State::kActive);
    // No Commit/Abort: the handle goes out of scope holding buffered writes.
  }
  EXPECT_EQ(obs::MetricsRegistry::Global().counter("txn.aborted")->value(),
            aborted_before + 1);

  // Nothing leaked into the committed state.
  auto v1 = client->Get("t", 0, "key1", client::ReadOptions{});
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1->value(), "committed");
  EXPECT_TRUE(
      client->Get("t", 0, "key2", client::ReadOptions{}).status().IsNotFound());

  // The same keys are free for the next transaction: no stale locks.
  client::Txn next = client->BeginTxn();
  ASSERT_TRUE(next.Write("t", 0, "key1", "second").ok());
  ASSERT_TRUE(next.Write("t", 0, "key2", "second").ok());
  ASSERT_TRUE(next.Commit().ok());
  EXPECT_FALSE(next.active());
  EXPECT_EQ(client->Get("t", 0, "key1", client::ReadOptions{})->value(),
            "second");
}

// Moving a Txn transfers abort responsibility: the moved-from handle is
// inert and only the destination aborts on drop.
TEST(ClientTxnTest, MoveTransfersOwnership) {
  cluster::MiniClusterOptions options;
  cluster::MiniCluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(
      cluster.master()->CreateTable("t", {"c"}, {{"c"}}, {"key5"}).ok());
  auto client = cluster.NewClient(0);

  client::Txn outer = client->BeginTxn();
  {
    client::Txn inner = client->BeginTxn();
    ASSERT_TRUE(inner.Write("t", 0, "moved", "v").ok());
    outer = std::move(inner);
    EXPECT_FALSE(inner.active());  // NOLINT(bugprone-use-after-move)
    // `inner` dies here; the live transaction must survive in `outer`.
  }
  EXPECT_TRUE(outer.active());
  ASSERT_TRUE(outer.Commit().ok());
  EXPECT_EQ(client->Get("t", 0, "moved", client::ReadOptions{})->value(), "v");
}

}  // namespace
}  // namespace logbase::txn
