// Seeded violation: calling a REQUIRES-annotated *Locked() helper without
// holding the lock it demands. Must fail to compile
// (-Werror=thread-safety-analysis: "calling function 'IncrementLocked'
// requires holding mutex 'mu_' exclusively").

#include "src/util/ordered_mutex.h"

namespace {

class Counter {
 public:
  void Increment() EXCLUDES(mu_) {
    IncrementLocked();  // BUG: caller never acquires mu_.
  }

 private:
  void IncrementLocked() REQUIRES(mu_) { ++value_; }

  mutable logbase::OrderedMutex mu_{logbase::lockrank::kMetricsShard,
                                    "tsa.violation"};
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return 0;
}
