// Seeded violation: writing a GUARDED_BY field without holding its mutex.
// Must fail to compile (-Werror=thread-safety-analysis: "writing variable
// 'value_' requires holding mutex 'mu_' exclusively").

#include "src/util/ordered_mutex.h"

namespace {

class Counter {
 public:
  void Increment() EXCLUDES(mu_) {
    ++value_;  // BUG: no MutexLock — the write is unguarded.
  }

 private:
  mutable logbase::OrderedMutex mu_{logbase::lockrank::kMetricsShard,
                                    "tsa.violation"};
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return 0;
}
