// Positive control for the tsa_negative harness: correctly annotated code
// that must compile cleanly under the exact flags the violation cases use.
// If this one goes red, the harness (flags, include path, header) is
// broken — not the seeded violations.

#include "src/util/ordered_mutex.h"

namespace {

class Counter {
 public:
  void Increment() EXCLUDES(mu_) {
    logbase::MutexLock l(mu_);
    IncrementLocked();
  }

  int Read() EXCLUDES(mu_) {
    logbase::MutexLock l(mu_);
    return value_;
  }

 private:
  void IncrementLocked() REQUIRES(mu_) { ++value_; }

  mutable logbase::OrderedMutex mu_{logbase::lockrank::kMetricsShard,
                                    "tsa.control"};
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return c.Read() == 1 ? 0 : 1;
}
