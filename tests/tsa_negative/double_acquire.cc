// Seeded violation: acquiring a mutex that is already held (self-deadlock
// with std::mutex; at runtime the rank checker would also abort). Must fail
// to compile (-Werror=thread-safety-analysis: "acquiring mutex 'mu_' that
// is already held").

#include "src/util/ordered_mutex.h"

namespace {

class Counter {
 public:
  void Increment() EXCLUDES(mu_) {
    logbase::MutexLock outer(mu_);
    logbase::MutexLock inner(mu_);  // BUG: mu_ is already held.
    ++value_;
  }

 private:
  mutable logbase::OrderedMutex mu_{logbase::lockrank::kMetricsShard,
                                    "tsa.violation"};
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return 0;
}
