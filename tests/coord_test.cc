// Tests for the coordination service: znode semantics, sessions/ephemerals,
// watches, master election, distributed locks, timestamp oracle.

#include <gtest/gtest.h>

#include <atomic>

#include "src/coord/coordination_service.h"
#include "src/coord/lock_manager.h"
#include "src/coord/master_election.h"
#include "src/coord/znode_tree.h"

namespace logbase::coord {
namespace {

TEST(ZnodeTreeTest, CreateGetSetDelete) {
  ZnodeTree tree;
  SessionId s = tree.CreateSession();
  auto path = tree.Create(s, "/a", "v1", CreateMode::kPersistent);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(*path, "/a");
  EXPECT_EQ(*tree.Get("/a"), "v1");
  ASSERT_TRUE(tree.Set("/a", "v2").ok());
  EXPECT_EQ(*tree.Get("/a"), "v2");
  ASSERT_TRUE(tree.Delete("/a").ok());
  EXPECT_FALSE(tree.Exists("/a"));
}

TEST(ZnodeTreeTest, CreateRequiresParent) {
  ZnodeTree tree;
  SessionId s = tree.CreateSession();
  EXPECT_TRUE(tree.Create(s, "/a/b", "", CreateMode::kPersistent)
                  .status()
                  .IsNotFound());
  ASSERT_TRUE(tree.Create(s, "/a", "", CreateMode::kPersistent).ok());
  EXPECT_TRUE(tree.Create(s, "/a/b", "", CreateMode::kPersistent).ok());
}

TEST(ZnodeTreeTest, CreateRejectsDuplicates) {
  ZnodeTree tree;
  SessionId s = tree.CreateSession();
  ASSERT_TRUE(tree.Create(s, "/dup", "", CreateMode::kPersistent).ok());
  EXPECT_FALSE(tree.Create(s, "/dup", "", CreateMode::kPersistent).ok());
}

TEST(ZnodeTreeTest, DeleteRefusesNodeWithChildren) {
  ZnodeTree tree;
  SessionId s = tree.CreateSession();
  ASSERT_TRUE(tree.Create(s, "/p", "", CreateMode::kPersistent).ok());
  ASSERT_TRUE(tree.Create(s, "/p/c", "", CreateMode::kPersistent).ok());
  EXPECT_FALSE(tree.Delete("/p").ok());
  ASSERT_TRUE(tree.Delete("/p/c").ok());
  EXPECT_TRUE(tree.Delete("/p").ok());
}

TEST(ZnodeTreeTest, SequentialNodesGetIncreasingSuffixes) {
  ZnodeTree tree;
  SessionId s = tree.CreateSession();
  ASSERT_TRUE(tree.Create(s, "/q", "", CreateMode::kPersistent).ok());
  auto a = tree.Create(s, "/q/n_", "", CreateMode::kPersistentSequential);
  auto b = tree.Create(s, "/q/n_", "", CreateMode::kPersistentSequential);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_LT(*a, *b);
  EXPECT_NE(*a, "/q/n_");
}

TEST(ZnodeTreeTest, GetChildrenSorted) {
  ZnodeTree tree;
  SessionId s = tree.CreateSession();
  ASSERT_TRUE(tree.Create(s, "/d", "", CreateMode::kPersistent).ok());
  ASSERT_TRUE(tree.Create(s, "/d/c", "", CreateMode::kPersistent).ok());
  ASSERT_TRUE(tree.Create(s, "/d/a", "", CreateMode::kPersistent).ok());
  ASSERT_TRUE(tree.Create(s, "/d/b", "", CreateMode::kPersistent).ok());
  // Grandchildren are not listed.
  ASSERT_TRUE(tree.Create(s, "/d/a/x", "", CreateMode::kPersistent).ok());
  auto children = tree.GetChildren("/d");
  ASSERT_TRUE(children.ok());
  EXPECT_EQ(*children, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(ZnodeTreeTest, SessionCloseRemovesEphemerals) {
  ZnodeTree tree;
  SessionId s1 = tree.CreateSession();
  SessionId s2 = tree.CreateSession();
  ASSERT_TRUE(tree.Create(s1, "/e1", "", CreateMode::kEphemeral).ok());
  ASSERT_TRUE(tree.Create(s2, "/e2", "", CreateMode::kEphemeral).ok());
  ASSERT_TRUE(tree.Create(s1, "/p", "", CreateMode::kPersistent).ok());
  tree.CloseSession(s1);
  EXPECT_FALSE(tree.Exists("/e1"));
  EXPECT_TRUE(tree.Exists("/e2"));
  EXPECT_TRUE(tree.Exists("/p"));  // persistent survives its creator
  EXPECT_FALSE(tree.SessionAlive(s1));
  EXPECT_TRUE(tree.SessionAlive(s2));
}

TEST(ZnodeTreeTest, EphemeralCreateWithDeadSessionFails) {
  ZnodeTree tree;
  SessionId s = tree.CreateSession();
  tree.CloseSession(s);
  EXPECT_FALSE(tree.Create(s, "/e", "", CreateMode::kEphemeral).ok());
}

TEST(ZnodeTreeTest, NodeWatchFiresOnceOnSet) {
  ZnodeTree tree;
  SessionId s = tree.CreateSession();
  ASSERT_TRUE(tree.Create(s, "/w", "", CreateMode::kPersistent).ok());
  std::atomic<int> fired{0};
  tree.WatchNode("/w", [&fired](const std::string&) { fired++; });
  ASSERT_TRUE(tree.Set("/w", "1").ok());
  ASSERT_TRUE(tree.Set("/w", "2").ok());  // one-shot: no second fire
  EXPECT_EQ(fired.load(), 1);
}

TEST(ZnodeTreeTest, NodeWatchFiresOnDelete) {
  ZnodeTree tree;
  SessionId s = tree.CreateSession();
  ASSERT_TRUE(tree.Create(s, "/w", "", CreateMode::kPersistent).ok());
  std::atomic<int> fired{0};
  tree.WatchNode("/w", [&fired](const std::string&) { fired++; });
  ASSERT_TRUE(tree.Delete("/w").ok());
  EXPECT_EQ(fired.load(), 1);
}

TEST(ZnodeTreeTest, ChildWatchFiresOnCreateAndSessionExpiry) {
  ZnodeTree tree;
  SessionId s = tree.CreateSession();
  ASSERT_TRUE(tree.Create(s, "/parent", "", CreateMode::kPersistent).ok());
  std::atomic<int> fired{0};
  tree.WatchChildren("/parent", [&fired](const std::string&) { fired++; });
  ASSERT_TRUE(tree.Create(s, "/parent/kid", "", CreateMode::kEphemeral).ok());
  EXPECT_EQ(fired.load(), 1);
  tree.WatchChildren("/parent", [&fired](const std::string&) { fired++; });
  tree.CloseSession(s);  // ephemeral kid disappears
  EXPECT_EQ(fired.load(), 2);
}

TEST(CoordinationServiceTest, TimestampsAreUniqueAndMonotonic) {
  CoordinationService coord;
  uint64_t prev = 0;
  for (int i = 0; i < 1000; i++) {
    uint64_t ts = coord.NextTimestamp(0);
    EXPECT_GT(ts, prev);
    prev = ts;
  }
  EXPECT_EQ(coord.LatestTimestamp(), prev);
}

TEST(CoordinationServiceTest, ReservedRangesDoNotOverlap) {
  CoordinationService coord;
  uint64_t a = coord.ReserveTimestamps(0, 100);
  uint64_t b = coord.ReserveTimestamps(1, 100);
  EXPECT_GE(b, a + 100);
  EXPECT_GT(coord.NextTimestamp(0), b + 99);
}

TEST(CoordinationServiceTest, RoundTripChargesVirtualTime) {
  sim::NetworkModel net(2);
  CoordinationService coord(&net, 0);
  sim::SimContext ctx;
  sim::SimContext::Scope scope(&ctx);
  coord.NextTimestamp(1);
  EXPECT_GT(ctx.now(), 0);
}

TEST(MasterElectionTest, FirstCandidateWins) {
  CoordinationService coord;
  SessionId s1 = coord.CreateSession(0);
  SessionId s2 = coord.CreateSession(1);
  MasterElection m1(&coord, s1, "master-1", 0);
  MasterElection m2(&coord, s2, "master-2", 1);
  ASSERT_TRUE(m1.Campaign().ok());
  ASSERT_TRUE(m2.Campaign().ok());
  EXPECT_TRUE(m1.IsLeader());
  EXPECT_FALSE(m2.IsLeader());
  EXPECT_EQ(*m1.Leader(), "master-1");
}

TEST(MasterElectionTest, FailoverOnSessionDeath) {
  CoordinationService coord;
  SessionId s1 = coord.CreateSession(0);
  SessionId s2 = coord.CreateSession(1);
  MasterElection m1(&coord, s1, "master-1", 0);
  MasterElection m2(&coord, s2, "master-2", 1);
  ASSERT_TRUE(m1.Campaign().ok());
  ASSERT_TRUE(m2.Campaign().ok());
  coord.CloseSession(s1);  // active master dies
  EXPECT_TRUE(m2.IsLeader());
  EXPECT_EQ(*m2.Leader(), "master-2");
}

TEST(MasterElectionTest, ResignHandsOver) {
  CoordinationService coord;
  SessionId s1 = coord.CreateSession(0);
  SessionId s2 = coord.CreateSession(1);
  MasterElection m1(&coord, s1, "a", 0);
  MasterElection m2(&coord, s2, "b", 1);
  ASSERT_TRUE(m1.Campaign().ok());
  ASSERT_TRUE(m2.Campaign().ok());
  m1.Resign();
  EXPECT_FALSE(m1.IsLeader());
  EXPECT_TRUE(m2.IsLeader());
}

TEST(LockManagerTest, MutualExclusion) {
  CoordinationService coord;
  LockManager locks(&coord);
  SessionId s1 = coord.CreateSession(0);
  SessionId s2 = coord.CreateSession(1);
  EXPECT_TRUE(locks.TryLock(s1, "key1", "txn-1", 0));
  EXPECT_FALSE(locks.TryLock(s2, "key1", "txn-2", 1));
  EXPECT_EQ(*locks.Holder("key1"), "txn-1");
  locks.Unlock("key1", "txn-1", 0);
  EXPECT_TRUE(locks.TryLock(s2, "key1", "txn-2", 1));
}

TEST(LockManagerTest, ReentrantForSameOwner) {
  CoordinationService coord;
  LockManager locks(&coord);
  SessionId s = coord.CreateSession(0);
  EXPECT_TRUE(locks.TryLock(s, "k", "txn-9", 0));
  EXPECT_TRUE(locks.TryLock(s, "k", "txn-9", 0));
}

TEST(LockManagerTest, UnlockByNonOwnerIsIgnored) {
  CoordinationService coord;
  LockManager locks(&coord);
  SessionId s = coord.CreateSession(0);
  EXPECT_TRUE(locks.TryLock(s, "k", "owner", 0));
  locks.Unlock("k", "impostor", 0);
  EXPECT_EQ(*locks.Holder("k"), "owner");
}

TEST(LockManagerTest, SessionDeathReleasesLocks) {
  CoordinationService coord;
  LockManager locks(&coord);
  SessionId s1 = coord.CreateSession(0);
  SessionId s2 = coord.CreateSession(1);
  EXPECT_TRUE(locks.TryLock(s1, "k", "txn-1", 0));
  coord.CloseSession(s1);  // crashed transaction holder
  EXPECT_TRUE(locks.TryLock(s2, "k", "txn-2", 1));
}

TEST(LockManagerTest, BinaryKeysAreEscaped) {
  CoordinationService coord;
  LockManager locks(&coord);
  SessionId s = coord.CreateSession(0);
  std::string weird("a/b\0c", 5);
  EXPECT_TRUE(locks.TryLock(s, Slice(weird), "o", 0));
  EXPECT_FALSE(locks.TryLock(s, Slice(weird), "other", 0));
}

}  // namespace
}  // namespace logbase::coord
