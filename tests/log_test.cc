// Tests for the log repository: record codec, writer (LSN assignment, group
// commit, segment rolling), reader (pointer fetch, sequential scan), and
// corruption handling.

#include <gtest/gtest.h>

#include "src/log/log_reader.h"
#include "src/log/log_record.h"
#include "src/log/log_writer.h"
#include "src/util/io.h"
#include "src/util/random.h"

namespace logbase::log {
namespace {

LogRecord MakeData(const std::string& key, const std::string& value,
                   uint64_t ts, uint32_t table = 1, uint32_t tablet = 7) {
  LogRecord record;
  record.type = LogRecordType::kData;
  record.key.table_id = table;
  record.key.tablet_id = tablet;
  record.row.primary_key = key;
  record.row.column_group = tablet >> 20;
  record.row.timestamp = ts;
  record.value = value;
  record.commit_ts = ts;
  return record;
}

TEST(LogRecordTest, EncodeDecodeRoundTrip) {
  LogRecord record = MakeData("user42", "payload bytes", 99);
  record.txn_id = 1234;
  std::string buf;
  record.EncodeTo(&buf);
  EXPECT_EQ(buf.size(), record.EncodedSize());

  Slice input(buf);
  LogRecord decoded;
  ASSERT_TRUE(LogRecord::DecodeFrom(&input, &decoded).ok());
  EXPECT_TRUE(input.empty());
  EXPECT_EQ(decoded.type, LogRecordType::kData);
  EXPECT_EQ(decoded.row.primary_key, "user42");
  EXPECT_EQ(decoded.value, "payload bytes");
  EXPECT_EQ(decoded.row.timestamp, 99u);
  EXPECT_EQ(decoded.txn_id, 1234u);
  EXPECT_EQ(decoded.key.table_id, 1u);
  EXPECT_EQ(decoded.key.tablet_id, 7u);
}

TEST(LogRecordTest, PropertyRandomRoundTrip) {
  Random rnd(404);
  for (int i = 0; i < 300; i++) {
    LogRecord record;
    record.type = static_cast<LogRecordType>(1 + rnd.Uniform(3));
    record.key.lsn = rnd.Next();
    record.key.table_id = static_cast<uint32_t>(rnd.Next());
    record.key.tablet_id = static_cast<uint32_t>(rnd.Next());
    record.txn_id = rnd.Next();
    record.row.primary_key = std::string(rnd.Uniform(64), 'k');
    record.row.column_group = static_cast<uint32_t>(rnd.Uniform(16));
    record.row.timestamp = rnd.Next();
    record.value = std::string(rnd.Uniform(256), 'v');
    record.commit_ts = rnd.Next();

    std::string buf;
    record.EncodeTo(&buf);
    Slice input(buf);
    LogRecord decoded;
    ASSERT_TRUE(LogRecord::DecodeFrom(&input, &decoded).ok());
    EXPECT_EQ(decoded.key.lsn, record.key.lsn);
    EXPECT_EQ(decoded.row.primary_key, record.row.primary_key);
    EXPECT_EQ(decoded.row.timestamp, record.row.timestamp);
    EXPECT_EQ(decoded.value, record.value);
    EXPECT_EQ(decoded.commit_ts, record.commit_ts);
  }
}

TEST(LogRecordTest, CrcCatchesCorruption) {
  LogRecord record = MakeData("k", "v", 1);
  std::string buf;
  record.EncodeTo(&buf);
  buf[buf.size() - 1] ^= 0x1;
  Slice input(buf);
  LogRecord decoded;
  EXPECT_TRUE(LogRecord::DecodeFrom(&input, &decoded).IsCorruption());
}

TEST(LogRecordTest, TruncationDetected) {
  LogRecord record = MakeData("k", "v", 1);
  std::string buf;
  record.EncodeTo(&buf);
  buf.resize(buf.size() / 2);
  Slice input(buf);
  LogRecord decoded;
  EXPECT_TRUE(LogRecord::DecodeFrom(&input, &decoded).IsCorruption());
}

TEST(LogPtrTest, EncodeDecode) {
  LogPtr ptr{3, 42, 123456, 789};
  std::string buf;
  EncodeLogPtr(&buf, ptr);
  Slice input(buf);
  LogPtr decoded;
  ASSERT_TRUE(DecodeLogPtr(&input, &decoded));
  EXPECT_EQ(decoded, ptr);
}

struct LogFixture {
  MemFileSystem fs;
  LogWriter writer{&fs, "/log", /*instance=*/5, /*segment_bytes=*/4096};
  LogReader reader{&fs, "/log", /*instance=*/5};

  LogFixture() { EXPECT_TRUE(writer.Open().ok()); }
};

TEST(LogWriterTest, AppendAssignsLsnsAndPtrs) {
  LogFixture f;
  auto p1 = f.writer.Append(MakeData("a", "1", 1));
  auto p2 = f.writer.Append(MakeData("b", "2", 2));
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_EQ(p1->instance, 5u);
  EXPECT_EQ(p1->segment, p2->segment);
  // Separate appends are separate batches: the second record sits past the
  // first plus the next batch's header frame.
  EXPECT_GT(p2->offset, p1->offset + p1->size);

  auto r1 = f.reader.Read(*p1);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->row.primary_key, "a");
  EXPECT_EQ(r1->key.lsn, 1u);
  auto r2 = f.reader.Read(*p2);
  EXPECT_EQ(r2->key.lsn, 2u);
}

TEST(LogWriterTest, BatchSharesOneAppend) {
  LogFixture f;
  std::vector<LogRecord> batch;
  for (int i = 0; i < 10; i++) {
    batch.push_back(MakeData("k" + std::to_string(i), "v", i));
  }
  std::vector<LogPtr> ptrs;
  ASSERT_TRUE(f.writer.AppendBatch(&batch, &ptrs).ok());
  ASSERT_EQ(ptrs.size(), 10u);
  for (size_t i = 1; i < ptrs.size(); i++) {
    EXPECT_EQ(ptrs[i].offset, ptrs[i - 1].offset + ptrs[i - 1].size);
  }
  // Each pointer resolves to its record.
  for (size_t i = 0; i < ptrs.size(); i++) {
    auto rec = f.reader.Read(ptrs[i]);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec->row.primary_key, "k" + std::to_string(i));
  }
}

TEST(LogWriterTest, RollsSegmentsAtSizeLimit) {
  LogFixture f;  // 4 KB segments
  std::string big_value(1500, 'x');
  LogPtr first, last;
  for (int i = 0; i < 10; i++) {
    auto ptr = f.writer.Append(MakeData("k", big_value, i));
    ASSERT_TRUE(ptr.ok());
    if (i == 0) first = *ptr;
    last = *ptr;
  }
  EXPECT_GT(last.segment, first.segment);
  auto segments = f.reader.ListSegments();
  ASSERT_TRUE(segments.ok());
  EXPECT_GT(segments->size(), 1u);
}

TEST(LogWriterTest, ReopenContinuesInFreshSegment) {
  MemFileSystem fs;
  uint32_t old_segment;
  {
    LogWriter writer(&fs, "/log", 0, 4096);
    ASSERT_TRUE(writer.Open().ok());
    auto ptr = writer.Append(MakeData("a", "1", 1));
    old_segment = ptr->segment;
  }
  LogWriter writer(&fs, "/log", 0, 4096);
  ASSERT_TRUE(writer.Open(/*first_lsn=*/100).ok());
  auto ptr = writer.Append(MakeData("b", "2", 2));
  EXPECT_GT(ptr->segment, old_segment);
  LogReader reader(&fs, "/log");
  EXPECT_EQ(reader.Read(*ptr)->key.lsn, 100u);
}

TEST(LogReaderTest, ScannerIteratesAllSegmentsInOrder) {
  LogFixture f;
  std::string value(800, 'v');
  const int kRecords = 30;  // spans several 4 KB segments
  for (int i = 0; i < kRecords; i++) {
    ASSERT_TRUE(f.writer.Append(MakeData("key" + std::to_string(i), value, i))
                    .ok());
  }
  auto scanner = f.reader.NewScanner();
  ASSERT_TRUE(scanner.ok());
  int count = 0;
  uint64_t last_lsn = 0;
  for (; (*scanner)->Valid(); (*scanner)->Next()) {
    EXPECT_GT((*scanner)->record().key.lsn, last_lsn);
    last_lsn = (*scanner)->record().key.lsn;
    count++;
  }
  EXPECT_TRUE((*scanner)->status().ok());
  EXPECT_EQ(count, kRecords);
}

TEST(LogReaderTest, ScannerStartsMidLog) {
  LogFixture f;
  std::vector<LogPtr> ptrs;
  for (int i = 0; i < 10; i++) {
    ptrs.push_back(*f.writer.Append(MakeData("k" + std::to_string(i), "v", i)));
  }
  auto scanner =
      f.reader.NewScanner(LogPosition{ptrs[6].segment, ptrs[6].offset});
  ASSERT_TRUE(scanner.ok());
  std::vector<std::string> keys;
  for (; (*scanner)->Valid(); (*scanner)->Next()) {
    keys.push_back((*scanner)->record().row.primary_key);
  }
  EXPECT_EQ(keys, (std::vector<std::string>{"k6", "k7", "k8", "k9"}));
}

TEST(LogReaderTest, ScannerPtrMatchesWriterPtr) {
  LogFixture f;
  std::vector<LogPtr> ptrs;
  for (int i = 0; i < 5; i++) {
    ptrs.push_back(*f.writer.Append(MakeData("k" + std::to_string(i), "v", i)));
  }
  auto scanner = f.reader.NewScanner();
  size_t i = 0;
  for (; (*scanner)->Valid(); (*scanner)->Next(), i++) {
    EXPECT_EQ((*scanner)->ptr(), ptrs[i]);
  }
  EXPECT_EQ(i, ptrs.size());
}

TEST(LogReaderTest, SegmentScannerStopsAtSegmentEnd) {
  LogFixture f;
  std::string value(800, 'v');
  for (int i = 0; i < 30; i++) {
    ASSERT_TRUE(f.writer.Append(MakeData("k", value, i)).ok());
  }
  auto segments = f.reader.ListSegments();
  ASSERT_GT(segments->size(), 1u);
  auto scanner = f.reader.NewSegmentScanner((*segments)[0]);
  ASSERT_TRUE(scanner.ok());
  int count = 0;
  for (; (*scanner)->Valid(); (*scanner)->Next()) {
    EXPECT_EQ((*scanner)->ptr().segment, (*segments)[0]);
    count++;
  }
  EXPECT_GT(count, 0);
  EXPECT_LT(count, 30);
}

TEST(LogReaderTest, ScanLimitExcludesHighLaneSegments) {
  LogFixture f;
  ASSERT_TRUE(f.writer.Append(MakeData("low", "v", 1)).ok());
  // Simulate a compaction output segment in the high lane.
  uint32_t high_segment = (1u << 24) | 1;
  auto wf = f.fs.NewWritableFile(SegmentFileName("/log", high_segment));
  std::string buf;
  MakeData("high", "v", 2).EncodeTo(&buf);
  ASSERT_TRUE((*wf)->Append(buf).ok());

  auto all = f.reader.NewScanner();
  int count_all = 0;
  for (; (*all)->Valid(); (*all)->Next()) count_all++;
  EXPECT_EQ(count_all, 2);

  auto limited = f.reader.NewScanner(LogPosition{0, 0}, 1u << 24);
  int count_limited = 0;
  for (; (*limited)->Valid(); (*limited)->Next()) {
    EXPECT_EQ((*limited)->record().row.primary_key, "low");
    count_limited++;
  }
  EXPECT_EQ(count_limited, 1);
}

TEST(LogReaderTest, TornTailStopsCleanly) {
  LogFixture f;
  ASSERT_TRUE(f.writer.Append(MakeData("good", "v", 1)).ok());
  // Append half a frame: a write torn by a crash.
  std::string frame;
  MakeData("torn", "v", 2).EncodeTo(&frame);
  frame.resize(frame.size() / 2);
  auto segments = f.reader.ListSegments();
  // MemFileSystem has no append-reopen; write a fresh segment holding only
  // the torn tail instead.
  uint32_t next_seg = (*segments)[0] + 1;
  auto torn = f.fs.NewWritableFile(SegmentFileName("/log", next_seg));
  ASSERT_TRUE((*torn)->Append(frame).ok());

  auto scanner = f.reader.NewScanner();
  int count = 0;
  for (; (*scanner)->Valid(); (*scanner)->Next()) count++;
  EXPECT_EQ(count, 1);
  EXPECT_TRUE((*scanner)->status().ok());  // clean end, not corruption
}

TEST(LogReaderTest, CorruptMidLogReportsCorruption) {
  MemFileSystem fs;
  // Hand-craft a segment: one good frame, one corrupted frame, one good.
  std::string buf;
  MakeData("a", "v", 1).EncodeTo(&buf);
  size_t corrupt_at = buf.size();
  MakeData("b", "v", 2).EncodeTo(&buf);
  buf[corrupt_at + 9] ^= 0xff;  // flip payload byte of frame 2
  MakeData("c", "v", 3).EncodeTo(&buf);
  auto wf = fs.NewWritableFile(SegmentFileName("/log", 1));
  ASSERT_TRUE((*wf)->Append(buf).ok());

  LogReader reader(&fs, "/log");
  auto scanner = reader.NewScanner();
  ASSERT_TRUE((*scanner)->Valid());
  EXPECT_EQ((*scanner)->record().row.primary_key, "a");
  (*scanner)->Next();
  EXPECT_FALSE((*scanner)->Valid());
  EXPECT_TRUE((*scanner)->status().IsCorruption());
}

}  // namespace
}  // namespace logbase::log
