// Additional coverage: the graph partitioner, pipelined-write cost
// semantics, buffered DFS writer durability boundary, read/write disk
// streams, group commit across segment rolls, client cache behaviour, and
// compaction/recovery edge cases surfaced by the benchmark work.

#include <gtest/gtest.h>

#include <set>

#include "src/cluster/mini_cluster.h"
#include "src/partition/graph_partitioner.h"
#include "src/sim/disk_model.h"
#include "src/sim/network_model.h"
#include "src/tablet/tablet_server.h"

namespace logbase {
namespace {

// ---------------------------------------------------------------------------
// Graph partitioner (§3.2, Schism-style)
// ---------------------------------------------------------------------------

TEST(GraphPartitionerTest, CoAccessedKeysColocate) {
  using partition::GraphPartitioner;
  using partition::TransactionTrace;
  // Two tight cliques of keys; partitioning into 2 must keep each whole.
  std::vector<TransactionTrace> trace{
      {{"a1", "a2", "a3"}, 10.0},
      {{"a1", "a3"}, 5.0},
      {{"b1", "b2", "b3"}, 10.0},
      {{"b2", "b3"}, 5.0},
  };
  auto result = GraphPartitioner::Partition(trace, 2);
  EXPECT_EQ(result.assignment.at("a1"), result.assignment.at("a2"));
  EXPECT_EQ(result.assignment.at("a1"), result.assignment.at("a3"));
  EXPECT_EQ(result.assignment.at("b1"), result.assignment.at("b2"));
  EXPECT_EQ(result.assignment.at("b1"), result.assignment.at("b3"));
  EXPECT_NE(result.assignment.at("a1"), result.assignment.at("b1"));
  EXPECT_DOUBLE_EQ(result.cross_partition_fraction, 0.0);
}

TEST(GraphPartitionerTest, BeatsHashPartitioningOnClusteredTrace) {
  using partition::GraphPartitioner;
  using partition::TransactionTrace;
  std::vector<TransactionTrace> trace;
  Random rnd(21);
  for (int group = 0; group < 20; group++) {
    for (int t = 0; t < 5; t++) {
      TransactionTrace txn;
      for (int k = 0; k < 4; k++) {
        txn.keys.push_back("g" + std::to_string(group) + "-k" +
                           std::to_string(rnd.Uniform(6)));
      }
      trace.push_back(std::move(txn));
    }
  }
  auto smart = GraphPartitioner::Partition(trace, 4);
  // Hash assignment for comparison.
  std::map<std::string, int> hashed;
  for (const auto& txn : trace) {
    for (const auto& key : txn.keys) {
      hashed[key] = static_cast<int>(std::hash<std::string>()(key) % 4);
    }
  }
  double hash_cross = GraphPartitioner::CrossPartitionFraction(trace, hashed);
  EXPECT_LT(smart.cross_partition_fraction, hash_cross * 0.5);
}

TEST(GraphPartitionerTest, RespectsBalanceCap) {
  using partition::GraphPartitioner;
  using partition::TransactionTrace;
  // One giant clique of 40 keys cannot all land in one of 4 partitions.
  TransactionTrace big;
  for (int i = 0; i < 40; i++) big.keys.push_back("k" + std::to_string(i));
  big.frequency = 100;
  auto result = GraphPartitioner::Partition({big}, 4);
  std::map<int, int> sizes;
  for (const auto& [key, part] : result.assignment) sizes[part]++;
  for (const auto& [part, size] : sizes) {
    EXPECT_LE(size, 40 / 4 * 1.3 + 1);
  }
}

TEST(GraphPartitionerTest, EmptyAndDegenerateInputs) {
  using partition::GraphPartitioner;
  auto empty = GraphPartitioner::Partition({}, 4);
  EXPECT_TRUE(empty.assignment.empty());
  auto zero_k = GraphPartitioner::Partition({{{"a"}, 1.0}}, 0);
  EXPECT_TRUE(zero_k.assignment.empty());
  auto one_k = GraphPartitioner::Partition({{{"a", "b"}, 1.0}}, 1);
  EXPECT_EQ(one_k.assignment.size(), 2u);
  EXPECT_DOUBLE_EQ(one_k.cross_partition_fraction, 0.0);
}

// ---------------------------------------------------------------------------
// Simulation: pipelined primitives
// ---------------------------------------------------------------------------

TEST(SimPipelineTest, TransferFromReturnsCompletionWithoutContext) {
  sim::NetworkModel net(2);
  EXPECT_EQ(sim::SimContext::Current(), nullptr);
  sim::VirtualTime done = net.TransferFrom(1000, 0, 1, 117);
  EXPECT_GT(done, 1000 + net.params().rpc_overhead_us);
}

TEST(SimPipelineTest, AccessFromSerializesOnResource) {
  sim::DiskModel disk("d");
  sim::VirtualTime first = disk.AccessFrom(0, 1, 0, 1000);
  // Second request at the same start time queues behind the first.
  sim::VirtualTime second = disk.AccessFrom(0, 2, 0, 1000);
  EXPECT_GT(second, first);
}

TEST(SimPipelineTest, ReadAndWriteStreamsIndependent) {
  sim::DiskModel disk("d");
  sim::SimContext ctx;
  sim::SimContext::Scope scope(&ctx);
  // Establish a sequential write stream.
  disk.Access(1, 0, 1000, /*is_write=*/true);
  disk.Access(1, 1000, 1000, /*is_write=*/true);
  sim::VirtualTime before = ctx.now();
  // A read elsewhere in the same locus...
  disk.Access(1, 500000, 100, /*is_write=*/false);
  // ...must NOT break the write stream's sequentiality.
  sim::VirtualTime after_read = ctx.now();
  disk.Access(1, 2000, 1000, /*is_write=*/true);
  sim::VirtualTime write_cost = ctx.now() - after_read;
  EXPECT_LT(write_cost, disk.params().seek_us);  // still sequential
  EXPECT_GE(after_read - before, disk.params().seek_us);  // read paid seek
}

TEST(SimPipelineTest, PipelinedDfsWriteBeatsSerialSum) {
  // A 1 MB sync through the 3-way pipeline should cost about
  // max(wire, disk) + overheads, far less than 3x(wire + disk).
  dfs::DfsOptions options;
  options.num_nodes = 3;
  dfs::Dfs dfs(options);
  sim::SimContext ctx;
  double wire_us = (1 << 20) / 117.0;
  double disk_us = (1 << 20) / 100.0;
  {
    sim::SimContext::Scope scope(&ctx);
    auto wf = dfs.Create("/pipe", 0);
    ASSERT_TRUE((*wf)->Append(std::string(1 << 20, 'p')).ok());
    ASSERT_TRUE((*wf)->Sync().ok());
  }
  EXPECT_LT(ctx.now(), 2 * (wire_us + disk_us));
  EXPECT_GT(ctx.now(), disk_us);  // at least one full stage
}

TEST(DfsBufferingTest, DataInvisibleUntilSync) {
  dfs::DfsOptions options;
  options.num_nodes = 3;
  dfs::Dfs dfs(options);
  auto wf = dfs.Create("/buffered", 0);
  ASSERT_TRUE((*wf)->Append("pending").ok());
  // Writer-visible size includes the buffer; durable/file size does not.
  EXPECT_EQ((*wf)->Size(), 7u);
  EXPECT_EQ(*dfs.FileSize("/buffered"), 0u);
  ASSERT_TRUE((*wf)->Sync().ok());
  EXPECT_EQ(*dfs.FileSize("/buffered"), 7u);
}

TEST(DfsBufferingTest, CloseFlushesOutstandingBuffer) {
  dfs::DfsOptions options;
  options.num_nodes = 3;
  dfs::Dfs dfs(options);
  {
    auto wf = dfs.Create("/closed", 0);
    ASSERT_TRUE((*wf)->Append("flushed on close").ok());
    ASSERT_TRUE((*wf)->Close().ok());
  }
  EXPECT_EQ(*dfs.FileSize("/closed"), 16u);
}

// ---------------------------------------------------------------------------
// Log: group commit across segment roll, segment-number parsing
// ---------------------------------------------------------------------------

TEST(LogExtraTest, ParseSegmentNumberHandlesAllLanes) {
  uint32_t seg = 0;
  EXPECT_TRUE(log::ParseSegmentNumber("/d/segment_000001.log", &seg));
  EXPECT_EQ(seg, 1u);
  EXPECT_TRUE(log::ParseSegmentNumber("/d/segment_16777217.log", &seg));
  EXPECT_EQ(seg, (1u << 24) | 1);
  EXPECT_FALSE(log::ParseSegmentNumber("/d/segment_.log", &seg));
  EXPECT_FALSE(log::ParseSegmentNumber("/d/segment_12.tmp", &seg));
  EXPECT_FALSE(log::ParseSegmentNumber("/d/other_12.log", &seg));
}

TEST(LogExtraTest, BatchLandsInOneSegmentAfterRollCheck) {
  MemFileSystem fs;
  log::LogWriter writer(&fs, "/log", 0, /*segment_bytes=*/2048);
  ASSERT_TRUE(writer.Open().ok());
  // Fill close to the roll threshold.
  log::LogRecord filler;
  filler.type = log::LogRecordType::kData;
  filler.row.primary_key = "pad";
  filler.value = std::string(1900, 'p');
  ASSERT_TRUE(writer.Append(filler).ok());
  // A multi-record batch starting past the threshold rolls first and then
  // stays contiguous within the fresh segment.
  std::vector<log::LogRecord> batch;
  for (int i = 0; i < 5; i++) {
    log::LogRecord record;
    record.type = log::LogRecordType::kData;
    record.row.primary_key = "k" + std::to_string(i);
    record.value = std::string(100, 'v');
    batch.push_back(std::move(record));
  }
  std::vector<log::LogPtr> ptrs;
  ASSERT_TRUE(writer.AppendBatch(&batch, &ptrs).ok());
  for (size_t i = 1; i < ptrs.size(); i++) {
    EXPECT_EQ(ptrs[i].segment, ptrs[0].segment);
    EXPECT_EQ(ptrs[i].offset, ptrs[i - 1].offset + ptrs[i - 1].size);
  }
}

// ---------------------------------------------------------------------------
// Tablet/compaction edge cases
// ---------------------------------------------------------------------------

struct ServerFixture {
  dfs::Dfs dfs{[] {
    dfs::DfsOptions o;
    o.num_nodes = 3;
    return o;
  }()};
  coord::CoordinationService coord;
  std::unique_ptr<tablet::TabletServer> server;
  std::string uid;

  ServerFixture() {
    tablet::TabletServerOptions options;
    options.segment_bytes = 1 << 16;
    server = std::make_unique<tablet::TabletServer>(options, &dfs, &coord);
    EXPECT_TRUE(server->Start().ok());
    tablet::TabletDescriptor d;
    d.table_id = 1;
    uid = d.uid();
    EXPECT_TRUE(server->OpenTablet(d).ok());
  }
};

TEST(CompactionEdgeTest, EmptyLogIsNoop) {
  ServerFixture f;
  tablet::CompactionStats stats;
  ASSERT_TRUE(f.server->CompactLog({}, &stats).ok());
  EXPECT_EQ(stats.input_records, 0u);
}

TEST(CompactionEdgeTest, DoubleCompactionIsIdempotent) {
  ServerFixture f;
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(f.server->Put(f.uid, "k" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(f.server->CompactLog().ok());
  tablet::CompactionStats stats;
  ASSERT_TRUE(f.server->CompactLog({}, &stats).ok());
  EXPECT_EQ(stats.output_records, 50u);  // dedupe keeps one copy
  for (int i = 0; i < 50; i++) {
    EXPECT_TRUE(f.server->Get(f.uid, "k" + std::to_string(i)).ok());
  }
}

TEST(CompactionEdgeTest, HistoricalReadsSurviveCompaction) {
  ServerFixture f;
  ASSERT_TRUE(f.server->Put(f.uid, "k", "v1").ok());
  auto v1 = f.server->Get(f.uid, "k");
  ASSERT_TRUE(f.server->Put(f.uid, "k", "v2").ok());
  ASSERT_TRUE(f.server->CompactLog().ok());  // keep all versions (default)
  EXPECT_EQ(f.server->GetAsOf(f.uid, "k", v1->timestamp)->value, "v1");
  EXPECT_EQ(f.server->Get(f.uid, "k")->value, "v2");
}

TEST(CompactionEdgeTest, VersionCapDropsHistoricalReads) {
  ServerFixture f;
  ASSERT_TRUE(f.server->Put(f.uid, "k", "v1").ok());
  auto v1 = f.server->Get(f.uid, "k");
  ASSERT_TRUE(f.server->Put(f.uid, "k", "v2").ok());
  tablet::CompactionOptions options;
  options.max_versions_per_key = 1;
  ASSERT_TRUE(f.server->CompactLog(options).ok());
  // The old version is gone from both log and (via redo-less swap) index.
  auto old_read = f.server->GetAsOf(f.uid, "k", v1->timestamp);
  // Index may still hold the entry pointing nowhere-valid only if swap kept
  // it; the contract is that the latest version always survives:
  EXPECT_EQ(f.server->Get(f.uid, "k")->value, "v2");
  (void)old_read;
}

TEST(ClientCacheTest, CachedRoutingAvoidsMasterAfterFirstOp) {
  cluster::MiniClusterOptions options;
  options.num_nodes = 3;
  cluster::MiniCluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster.master()
                  ->CreateTable("t", {"c"}, {{"c"}}, {"m"})
                  .ok());
  auto client = cluster.NewClient(1);
  ASSERT_TRUE(client->Put("t", 0, "a", "1", {}).ok());
  ASSERT_TRUE(client->Put("t", 0, "a", "2", {}).ok());  // served from cache
  EXPECT_EQ(client->Get("t", 0, "a", client::ReadOptions{})->value(), "2");
  client->InvalidateCache();
  // Refetches routing.
  EXPECT_EQ(client->Get("t", 0, "a", client::ReadOptions{})->value(), "2");
}

TEST(MiniClusterTest, TwoTablesCoexist) {
  cluster::MiniClusterOptions options;
  options.num_nodes = 3;
  cluster::MiniCluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster.master()->CreateTable("t1", {"c"}, {{"c"}}, {}).ok());
  ASSERT_TRUE(cluster.master()->CreateTable("t2", {"c"}, {{"c"}}, {}).ok());
  auto client = cluster.NewClient(0);
  ASSERT_TRUE(client->Put("t1", 0, "k", "table1", {}).ok());
  ASSERT_TRUE(client->Put("t2", 0, "k", "table2", {}).ok());
  EXPECT_EQ(client->Get("t1", 0, "k", client::ReadOptions{})->value(),
            "table1");
  EXPECT_EQ(client->Get("t2", 0, "k", client::ReadOptions{})->value(),
            "table2");
}

}  // namespace
}  // namespace logbase
