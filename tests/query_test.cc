// Query subsystem (src/query/): plan codec round-trips, predicate NULL
// semantics, column-batch wire format, aggregation-partial merge algebra,
// and the seeded differential test the pushdown design is pinned by: every
// query runs three ways — client-side reference evaluation over a plain
// Scan, pushdown on the primaries, pushdown on the replicas — and all three
// must agree bit-for-bit (rows and rendered aggregates alike).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "src/cluster/mini_cluster.h"
#include "src/query/column_batch.h"
#include "src/query/executor.h"
#include "src/query/plan.h"
#include "src/util/random.h"

namespace logbase::query {
namespace {

using Op = Predicate::Op;

// ---------------------------------------------------------------------------
// Plan layer units.
// ---------------------------------------------------------------------------

QueryPlan NontrivialPlan() {
  QueryPlan plan;
  plan.start_key = "k0010";
  plan.end_key = "k0090";
  plan.predicate = Predicate::And(
      {Predicate::Cmp(Op::kGe, "f0", Value::Int64(-42)),
       Predicate::Or({Predicate::Cmp(Op::kEq, "f1", Value::Bytes("red")),
                      Predicate::Cmp(Op::kNe, "f1", Value::Bytes("blue"))})});
  plan.projection.columns = {"f0", "f1"};
  plan.aggregation.kind = Aggregation::Kind::kSum;
  plan.aggregation.column = "f0";
  plan.aggregation.value_kind = Value::Kind::kInt64;
  plan.aggregation.group_by_prefix_len = 4;
  return plan;
}

TEST(QueryPlanTest, EncodeDecodeRoundTripIsByteStable) {
  QueryPlan plan = NontrivialPlan();
  std::string wire = plan.Encode();
  auto decoded = QueryPlan::Decode(Slice(wire));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  // Deterministic encoding: decode(encode(p)) re-encodes to the same bytes,
  // so request sizes (and virtual-time charges) are reproducible.
  EXPECT_EQ(decoded->Encode(), wire);
  EXPECT_EQ(decoded->start_key, plan.start_key);
  EXPECT_EQ(decoded->end_key, plan.end_key);
  EXPECT_EQ(decoded->projection.columns, plan.projection.columns);
  EXPECT_EQ(decoded->aggregation.group_by_prefix_len, 4u);
}

TEST(QueryPlanTest, DecodeRejectsTruncationAndTrailingBytes) {
  std::string wire = NontrivialPlan().Encode();
  for (size_t cut = 0; cut < wire.size(); cut++) {
    auto decoded = QueryPlan::Decode(Slice(wire.data(), cut));
    EXPECT_FALSE(decoded.ok()) << "accepted a " << cut << "-byte prefix";
  }
  std::string padded = wire + "x";
  EXPECT_FALSE(QueryPlan::Decode(Slice(padded)).ok());
}

TEST(QueryPlanTest, MissingAndUnparsableCellsNeverMatch) {
  std::map<std::string, std::string> row = {{"f0", "not-a-number"},
                                            {"f1", "red"}};
  // An absent column fails every comparison, even != .
  for (Op op : {Op::kEq, Op::kNe, Op::kLt, Op::kLe, Op::kGt, Op::kGe}) {
    EXPECT_FALSE(Predicate::Cmp(op, "missing", Value::Bytes("x")).Matches(row));
    // An unparsable cell fails every int comparison the same way.
    EXPECT_FALSE(Predicate::Cmp(op, "f0", Value::Int64(7)).Matches(row));
  }
  EXPECT_TRUE(Predicate::Cmp(Op::kEq, "f1", Value::Bytes("red")).Matches(row));
  // NULL semantics propagate through the combinators: OR of two failed
  // comparisons is false, AND with one failed comparison is false.
  EXPECT_FALSE(
      Predicate::Or({Predicate::Cmp(Op::kLt, "f0", Value::Int64(7)),
                     Predicate::Cmp(Op::kEq, "missing", Value::Bytes("x"))})
          .Matches(row));
  EXPECT_FALSE(
      Predicate::And({Predicate::Cmp(Op::kEq, "f1", Value::Bytes("red")),
                      Predicate::Cmp(Op::kGe, "f0", Value::Int64(0))})
          .Matches(row));
}

TEST(QueryPlanTest, ParseInt64IsStrict) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64(Slice("0"), &v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(ParseInt64(Slice("-9223372036854775808"), &v));
  EXPECT_EQ(v, INT64_MIN);
  EXPECT_TRUE(ParseInt64(Slice("9223372036854775807"), &v));
  EXPECT_EQ(v, INT64_MAX);
  EXPECT_FALSE(ParseInt64(Slice(""), &v));
  EXPECT_FALSE(ParseInt64(Slice("12x"), &v));
  EXPECT_FALSE(ParseInt64(Slice(" 12"), &v));
  EXPECT_FALSE(ParseInt64(Slice("9223372036854775808"), &v));  // overflow
}

TEST(QueryPlanTest, PrefixSuccessor) {
  EXPECT_EQ(PrefixSuccessor("ab"), "ac");
  EXPECT_EQ(PrefixSuccessor(std::string("a\xff")), "b");
  EXPECT_EQ(PrefixSuccessor(""), "");
  EXPECT_EQ(PrefixSuccessor(std::string("\xff\xff")), "");
}

TEST(ColumnBatchTest, CodecRoundTripAndExactEncodedSize) {
  ColumnBatch batch;
  batch.keys = {"a", "bb", "ccc"};
  batch.timestamps = {1, 200, 30000};
  BatchColumn c0;
  c0.name = "f0";
  c0.cells = {"1", "", "3"};
  c0.present = {1, 0, 1};  // middle cell absent (not present-but-empty)
  BatchColumn c1;
  c1.name = "_raw";
  c1.cells = {"x", "y", std::string(100, 'z')};
  c1.present = {1, 1, 1};
  batch.columns = {c0, c1};

  std::string wire;
  batch.EncodeTo(&wire);
  EXPECT_EQ(batch.EncodedSize(), wire.size());  // charged == shipped

  auto decoded = ColumnBatch::Decode(Slice(wire));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->keys, batch.keys);
  EXPECT_EQ(decoded->timestamps, batch.timestamps);
  ASSERT_EQ(decoded->columns.size(), 2u);
  EXPECT_EQ(decoded->columns[0].cells, c0.cells);
  EXPECT_EQ(decoded->columns[0].present, c0.present);
  EXPECT_EQ(decoded->columns[1].cells, c1.cells);
  std::string padded = wire + "x";
  EXPECT_FALSE(ColumnBatch::Decode(Slice(padded)).ok());
}

TEST(AggResultTest, MergeIsOrderIndependent) {
  auto bucket = [](uint64_t count, int64_t sum, int64_t lo, int64_t hi) {
    AggBucket b;
    b.count = count;
    b.sum = sum;
    b.has_minmax = true;
    b.min = Value::Int64(lo);
    b.max = Value::Int64(hi);
    return b;
  };
  AggResult a, b, c;
  a.groups["g1"] = bucket(2, 10, -5, 9);
  a.groups["g2"] = bucket(1, 7, 7, 7);
  b.groups["g1"] = bucket(3, -4, -9, 2);
  c.groups["g3"] = bucket(1, 1, 1, 1);
  c.groups["g2"] = bucket(2, 3, -1, 30);

  Aggregation spec;
  spec.kind = Aggregation::Kind::kSum;
  AggResult abc = a;
  abc.Merge(b);
  abc.Merge(c);
  AggResult cba = c;
  cba.Merge(b);
  cba.Merge(a);
  std::string render = abc.Render(spec);
  EXPECT_EQ(render, cba.Render(spec));
  EXPECT_EQ(render, "g1\t6\ng2\t10\ng3\t1\n");
  spec.kind = Aggregation::Kind::kMin;
  EXPECT_EQ(abc.Render(spec), "g1\t-9\ng2\t-1\ng3\t1\n");
  spec.kind = Aggregation::Kind::kMax;
  EXPECT_EQ(abc.Render(spec), "g1\t9\ng2\t30\ng3\t1\n");
  // Partials survive their own wire format.
  std::string wire;
  abc.EncodeTo(&wire);
  EXPECT_EQ(abc.EncodedSize(), wire.size());
  auto decoded = AggResult::Decode(Slice(wire));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->Render(spec), abc.Render(spec));
}

// ---------------------------------------------------------------------------
// The seeded differential test: three execution paths, one answer.
// ---------------------------------------------------------------------------

/// A row's projection under the reference path: per projected column a
/// (present, cell) pair, exactly what a shipped batch carries.
struct RefRow {
  std::string key;
  uint64_t timestamp = 0;
  std::vector<std::pair<bool, std::string>> cells;
};

std::string Key(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "k%04d", i);
  return buf;
}

class QueryDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, QueryDifferentialTest,
                         ::testing::Values(17ull, 4242ull));

TEST_P(QueryDifferentialTest, ThreeWayAgreement) {
  cluster::MiniClusterOptions options;
  options.num_nodes = 3;
  options.num_replicas = 2;
  cluster::MiniCluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster.master()
                  ->CreateTable("t", {"f0", "f1", "f2"}, {{"f0", "f1", "f2"}},
                                {Key(40), Key(80)})
                  .ok());
  auto client = cluster.NewClient(0);

  // Seeded data with deliberate mess: missing f0, unparsable f0, and a few
  // values that are not column-encoded at all. All three paths must treat
  // every one of these identically (NULL semantics).
  Random rnd(GetParam());
  const char* colors[] = {"red", "green", "blue", "amber"};
  const int kRows = 120;
  for (int i = 0; i < kRows; i++) {
    std::string value;
    uint64_t mess = rnd.Uniform(100);
    if (mess < 3) {
      value = "opaque-not-column-encoded";
    } else {
      std::map<std::string, std::string> columns;
      if (mess >= 8) {
        columns["f0"] = mess < 13 ? "NaN"
                                  : std::to_string(static_cast<int64_t>(
                                        rnd.Uniform(1000)) - 200);
      }
      columns["f1"] = colors[rnd.Uniform(4)];
      columns["f2"] = std::string(100, static_cast<char>('a' + i % 26));
      value = EncodeColumnMap(columns);
    }
    ASSERT_TRUE(client->Put("t", 0, Key(i), value, {}).ok()) << i;
  }

  // Attach one replica per tablet and catch them up; after the tick the
  // replica watermark covers every write above, so replica-served answers
  // must equal primary-served ones exactly.
  for (const auto& [uid, location] :
       cluster.active_master()->AssignmentsSnapshot()) {
    auto added = cluster.active_master()->AddReplica(uid);
    ASSERT_TRUE(added.ok()) << added.status().ToString();
  }
  ASSERT_TRUE(cluster.TickReplicas().ok());
  client->InvalidateCache();

  std::vector<QueryPlan> plans;
  {
    QueryPlan p;  // match-all, raw rows: the canonical Scan plan
    plans.push_back(p);
    p.start_key = Key(13);
    p.end_key = Key(97);
    p.predicate = Predicate::Cmp(Op::kLt, "f0", Value::Int64(-100));
    plans.push_back(p);  // selective
    p.predicate = Predicate::And(
        {Predicate::Cmp(Op::kGe, "f0", Value::Int64(0)),
         Predicate::Cmp(Op::kEq, "f1", Value::Bytes("red"))});
    p.projection.columns = {"f1", "f0", "missing-col"};
    plans.push_back(p);  // conjunction + projection incl. a missing column
    p = QueryPlan();
    p.predicate = Predicate::Or(
        {Predicate::Cmp(Op::kEq, "f1", Value::Bytes("blue")),
         Predicate::Cmp(Op::kGt, "f0", Value::Int64(650))});
    p.projection.columns = {"f2"};
    plans.push_back(p);  // disjunction
    p = QueryPlan();
    p.aggregation.kind = Aggregation::Kind::kCount;
    p.aggregation.group_by_prefix_len = 4;  // "k00x" buckets of ten
    plans.push_back(p);
    p.aggregation.kind = Aggregation::Kind::kSum;
    p.aggregation.column = "f0";
    plans.push_back(p);
    p.aggregation.kind = Aggregation::Kind::kMin;
    p.aggregation.group_by_prefix_len = 0;
    p.predicate = Predicate::Cmp(Op::kNe, "f1", Value::Bytes("green"));
    plans.push_back(p);
    p.aggregation.kind = Aggregation::Kind::kMax;
    p.aggregation.column = "f1";
    p.aggregation.value_kind = Value::Kind::kBytes;
    plans.push_back(p);
    p = QueryPlan();  // empty range
    p.start_key = Key(50);
    p.end_key = Key(50);
    plans.push_back(p);
    // A couple of seeded random comparisons for operand diversity.
    for (int i = 0; i < 3; i++) {
      p = QueryPlan();
      p.predicate = Predicate::Cmp(
          static_cast<Op>(1 + rnd.Uniform(6)), "f0",
          Value::Int64(static_cast<int64_t>(rnd.Uniform(1000)) - 200));
      plans.push_back(p);
    }
  }

  for (size_t plan_index = 0; plan_index < plans.size(); plan_index++) {
    const QueryPlan& plan = plans[plan_index];
    SCOPED_TRACE("plan " + std::to_string(plan_index));

    // Path 1 — client-side reference: ship every row in range (plain Scan,
    // raw values), evaluate row-at-a-time with Predicate::Matches, fold
    // aggregates with the executor's published skip rules.
    auto raw = client->Scan("t", 0, plan.start_key, plan.end_key,
                            client::ReadOptions{});
    ASSERT_TRUE(raw.ok()) << raw.status().ToString();
    std::vector<RefRow> ref_rows;
    AggResult ref_agg;
    for (const tablet::ReadRow& row : *raw) {
      std::map<std::string, std::string> columns;
      DecodeColumnMap(Slice(row.value), &columns);  // undecodable: no cells
      if (!plan.predicate.IsTrue() && !plan.predicate.Matches(columns)) {
        continue;
      }
      if (plan.aggregation.enabled()) {
        const Aggregation& spec = plan.aggregation;
        std::string group =
            spec.group_by_prefix_len > 0
                ? row.key.substr(0, std::min<size_t>(spec.group_by_prefix_len,
                                                     row.key.size()))
                : std::string();
        AggBucket& bucket = ref_agg.groups[group];
        if (spec.kind == Aggregation::Kind::kCount) {
          bucket.count++;
          continue;
        }
        auto cell = columns.find(spec.column);
        if (cell == columns.end()) continue;
        Value v;
        if (spec.value_kind == Value::Kind::kInt64) {
          int64_t parsed;
          if (!ParseInt64(Slice(cell->second), &parsed)) continue;
          v = Value::Int64(parsed);
        } else {
          v = Value::Bytes(cell->second);
        }
        bucket.count++;
        if (spec.kind == Aggregation::Kind::kSum) {
          bucket.sum += v.i64;
          continue;
        }
        if (!bucket.has_minmax) {
          bucket.min = v;
          bucket.max = v;
          bucket.has_minmax = true;
        } else {
          if (v.Compare(bucket.min) < 0) bucket.min = v;
          if (v.Compare(bucket.max) > 0) bucket.max = v;
        }
        continue;
      }
      RefRow out;
      out.key = row.key;
      out.timestamp = row.timestamp;
      if (plan.projection.empty()) {
        out.cells.emplace_back(true, row.value);
      } else {
        for (const std::string& name : plan.projection.columns) {
          auto it = columns.find(name);
          out.cells.emplace_back(it != columns.end(),
                                 it != columns.end() ? it->second
                                                     : std::string());
        }
      }
      ref_rows.push_back(std::move(out));
    }

    // Paths 2 and 3 — pushdown on the primaries, pushdown on the replicas.
    for (bool via_replica : {false, true}) {
      SCOPED_TRACE(via_replica ? "replica pushdown" : "primary pushdown");
      client::QueryOptions query_options;
      query_options.read.allow_stale = via_replica;
      query_options.batch_rows = 32;  // several batches per tablet
      auto result = client->Query("t", 0, plan, query_options);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_GT(result->tablets_queried, 0u);
      if (via_replica) {
        // Every tablet has a caught-up replica, so nothing falls back.
        EXPECT_EQ(result->tablets_from_replica, result->tablets_queried);
      } else {
        EXPECT_EQ(result->tablets_from_replica, 0u);
      }

      if (plan.aggregation.enabled()) {
        ASSERT_TRUE(result->aggregated);
        EXPECT_EQ(result->agg.Render(plan.aggregation),
                  ref_agg.Render(plan.aggregation));
        continue;
      }
      ASSERT_FALSE(result->aggregated);
      std::vector<RefRow> got;
      for (const ColumnBatch& batch : result->batches) {
        for (size_t i = 0; i < batch.NumRows(); i++) {
          RefRow row;
          row.key = batch.keys[i];
          row.timestamp = batch.timestamps[i];
          for (const BatchColumn& column : batch.columns) {
            row.cells.emplace_back(column.present[i] != 0, column.cells[i]);
          }
          got.push_back(std::move(row));
        }
      }
      ASSERT_EQ(got.size(), ref_rows.size());
      for (size_t i = 0; i < got.size(); i++) {
        EXPECT_EQ(got[i].key, ref_rows[i].key) << i;
        EXPECT_EQ(got[i].timestamp, ref_rows[i].timestamp) << i;
        ASSERT_EQ(got[i].cells.size(), ref_rows[i].cells.size()) << i;
        for (size_t c = 0; c < got[i].cells.size(); c++) {
          EXPECT_EQ(got[i].cells[c].first, ref_rows[i].cells[c].first)
              << i << "/" << c;
          EXPECT_EQ(got[i].cells[c].second, ref_rows[i].cells[c].second)
              << i << "/" << c;
        }
      }
    }
  }
}

// The physical claim behind pushdown: a selective predicate or an
// aggregation ships a small fraction of the bytes a row-shipping scan
// moves. (The throughput claim lives in bench_fig10_range_scan.)
TEST(QueryPushdownTest, SelectivePlansShipFewerBytes) {
  cluster::MiniClusterOptions options;
  options.num_nodes = 3;
  cluster::MiniCluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster.master()
                  ->CreateTable("t", {"f0", "f2"}, {{"f0", "f2"}},
                                {Key(40), Key(80)})
                  .ok());
  auto client = cluster.NewClient(0);
  for (int i = 0; i < 120; i++) {
    std::map<std::string, std::string> columns;
    columns["f0"] = std::to_string(i);
    columns["f2"] = std::string(200, 'p');
    ASSERT_TRUE(
        client->Put("t", 0, Key(i), EncodeColumnMap(columns), {}).ok());
  }

  QueryPlan all;  // the Scan-equivalent plan: every row, full values
  auto full = client->Query("t", 0, all, {});
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->rows_returned, 120u);

  QueryPlan selective;  // ~10% of rows survive
  selective.predicate = Predicate::Cmp(Op::kLt, "f0", Value::Int64(12));
  auto filtered = client->Query("t", 0, selective, {});
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(filtered->rows_returned, 12u);
  EXPECT_EQ(filtered->rows_scanned, 120u);
  EXPECT_LT(filtered->bytes_shipped * 5, full->bytes_shipped);

  QueryPlan count;  // partials only: near-zero bytes
  count.aggregation.kind = Aggregation::Kind::kCount;
  auto counted = client->Query("t", 0, count, {});
  ASSERT_TRUE(counted.ok());
  EXPECT_EQ(counted->agg.Render(count.aggregation), "\t120\n");
  EXPECT_LT(counted->bytes_shipped * 100, full->bytes_shipped);
}

}  // namespace
}  // namespace logbase::query
