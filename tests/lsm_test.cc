// Tests for the LSM-tree: memtable semantics, flush, leveled compaction,
// snapshot reads, iterators, manifest recovery, and a randomized
// differential test against a std::map oracle.

#include <gtest/gtest.h>

#include <map>

#include "src/lsm/format.h"
#include "src/lsm/lsm_tree.h"
#include "src/lsm/memtable.h"
#include "src/lsm/merging_iterator.h"
#include "src/util/io.h"
#include "src/util/random.h"

namespace logbase::lsm {
namespace {

TEST(InternalKeyTest, PackAndExtract) {
  std::string ikey = MakeInternalKey("user1", 42, ValueType::kValue);
  EXPECT_EQ(ExtractUserKey(ikey).ToString(), "user1");
  uint64_t tag = ExtractTag(ikey);
  EXPECT_EQ(TagSequence(tag), 42u);
  EXPECT_EQ(TagType(tag), ValueType::kValue);
}

TEST(InternalKeyTest, ComparatorOrdersNewestFirst) {
  InternalKeyComparator cmp(BytewiseComparator());
  std::string old_v = MakeInternalKey("k", 1, ValueType::kValue);
  std::string new_v = MakeInternalKey("k", 2, ValueType::kValue);
  std::string other = MakeInternalKey("l", 1, ValueType::kValue);
  EXPECT_LT(cmp.Compare(new_v, old_v), 0);  // newer sorts first
  EXPECT_LT(cmp.Compare(old_v, other), 0);  // user key dominates
}

TEST(MemTableTest, GetLatestAndSnapshot) {
  InternalKeyComparator cmp(BytewiseComparator());
  MemTable mem(&cmp);
  mem.Add(1, ValueType::kValue, "k", "v1");
  mem.Add(5, ValueType::kValue, "k", "v5");
  std::string value;
  EXPECT_EQ(mem.Get("k", 100, &value), LookupResult::kFound);
  EXPECT_EQ(value, "v5");
  EXPECT_EQ(mem.Get("k", 3, &value), LookupResult::kFound);
  EXPECT_EQ(value, "v1");
  EXPECT_EQ(mem.Get("absent", 100, &value), LookupResult::kNotPresent);
}

TEST(MemTableTest, TombstoneShadowsOlderValue) {
  InternalKeyComparator cmp(BytewiseComparator());
  MemTable mem(&cmp);
  mem.Add(1, ValueType::kValue, "k", "v1");
  mem.Add(2, ValueType::kDeletion, "k", "");
  std::string value;
  EXPECT_EQ(mem.Get("k", 100, &value), LookupResult::kDeleted);
  EXPECT_EQ(mem.Get("k", 1, &value), LookupResult::kFound);
}

TEST(MergingIteratorTest, MergesSortedStreams) {
  InternalKeyComparator cmp(BytewiseComparator());
  MemTable a(&cmp), b(&cmp);
  a.Add(1, ValueType::kValue, "apple", "A");
  a.Add(3, ValueType::kValue, "cherry", "C");
  b.Add(2, ValueType::kValue, "banana", "B");
  std::vector<std::unique_ptr<KvIterator>> children;
  children.push_back(a.NewIterator());
  children.push_back(b.NewIterator());
  MergingIterator merged(&cmp, std::move(children));
  merged.SeekToFirst();
  std::vector<std::string> keys;
  for (; merged.Valid(); merged.Next()) {
    keys.push_back(ExtractUserKey(merged.key()).ToString());
  }
  EXPECT_EQ(keys, (std::vector<std::string>{"apple", "banana", "cherry"}));
}

struct LsmFixture {
  MemFileSystem fs;
  std::unique_ptr<LsmTree> tree;

  explicit LsmFixture(size_t memtable_bytes = 4096) {
    LsmOptions options;
    options.memtable_bytes = memtable_bytes;
    options.table.block_size = 512;
    options.max_output_file_bytes = 2048;
    options.base_level_bytes = 8192;
    auto opened = LsmTree::Open(options, &fs, "/lsm");
    EXPECT_TRUE(opened.ok());
    tree = std::move(*opened);
  }
};

TEST(LsmTreeTest, PutGetDelete) {
  LsmFixture f;
  ASSERT_TRUE(f.tree->Put("a", "1").ok());
  ASSERT_TRUE(f.tree->Put("b", "2").ok());
  EXPECT_EQ(*f.tree->Get("a"), "1");
  EXPECT_EQ(*f.tree->Get("b"), "2");
  ASSERT_TRUE(f.tree->Delete("a").ok());
  EXPECT_TRUE(f.tree->Get("a").status().IsNotFound());
  EXPECT_EQ(*f.tree->Get("b"), "2");
}

TEST(LsmTreeTest, OverwriteKeepsNewest) {
  LsmFixture f;
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(f.tree->Put("key", "v" + std::to_string(i)).ok());
  }
  EXPECT_EQ(*f.tree->Get("key"), "v9");
}

TEST(LsmTreeTest, SnapshotReadsSeeOldVersions) {
  LsmFixture f;
  ASSERT_TRUE(f.tree->Put("k", "old").ok());
  uint64_t snapshot = f.tree->last_sequence();
  ASSERT_TRUE(f.tree->Put("k", "new").ok());
  EXPECT_EQ(*f.tree->Get("k", snapshot), "old");
  EXPECT_EQ(*f.tree->Get("k"), "new");
}

TEST(LsmTreeTest, GetAcrossFlushedRuns) {
  LsmFixture f;
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(
        f.tree->Put("key" + std::to_string(i), "val" + std::to_string(i))
            .ok());
  }
  ASSERT_TRUE(f.tree->FlushMemTable().ok());
  EXPECT_GE(f.tree->LevelFileCount(0) +
                f.tree->LevelFileCount(1),
            1);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(*f.tree->Get("key" + std::to_string(i)),
              "val" + std::to_string(i));
  }
}

TEST(LsmTreeTest, DeleteShadowsAcrossLevels) {
  LsmFixture f;
  ASSERT_TRUE(f.tree->Put("doomed", "v").ok());
  ASSERT_TRUE(f.tree->FlushMemTable().ok());  // value now in a run
  ASSERT_TRUE(f.tree->Delete("doomed").ok());
  EXPECT_TRUE(f.tree->Get("doomed").status().IsNotFound());
  ASSERT_TRUE(f.tree->FlushMemTable().ok());  // tombstone in a newer run
  EXPECT_TRUE(f.tree->Get("doomed").status().IsNotFound());
  ASSERT_TRUE(f.tree->CompactUntilQuiet().ok());
  EXPECT_TRUE(f.tree->Get("doomed").status().IsNotFound());
}

TEST(LsmTreeTest, AutomaticFlushAndCompaction) {
  LsmFixture f(/*memtable_bytes=*/2048);
  Random rnd(3);
  for (int i = 0; i < 2000; i++) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%05d", static_cast<int>(rnd.Uniform(500)));
    ASSERT_TRUE(f.tree->Put(key, std::string(30, 'v')).ok());
  }
  // Compaction kept L0 bounded.
  EXPECT_LE(f.tree->LevelFileCount(0), 4);
  EXPECT_GT(f.tree->TotalTableBytes(), 0u);
}

TEST(LsmTreeTest, IteratorHidesTombstonesAndOldVersions) {
  LsmFixture f;
  ASSERT_TRUE(f.tree->Put("a", "1").ok());
  ASSERT_TRUE(f.tree->Put("b", "old").ok());
  ASSERT_TRUE(f.tree->Put("b", "new").ok());
  ASSERT_TRUE(f.tree->Put("c", "3").ok());
  ASSERT_TRUE(f.tree->Delete("c").ok());
  ASSERT_TRUE(f.tree->FlushMemTable().ok());
  ASSERT_TRUE(f.tree->Put("d", "4").ok());

  auto iter = f.tree->NewIterator();
  std::vector<std::pair<std::string, std::string>> seen;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    seen.emplace_back(iter->key().ToString(), iter->value().ToString());
  }
  EXPECT_EQ(seen, (std::vector<std::pair<std::string, std::string>>{
                      {"a", "1"}, {"b", "new"}, {"d", "4"}}));
}

TEST(LsmTreeTest, IteratorSeek) {
  LsmFixture f;
  for (int i = 0; i < 50; i += 5) {
    char key[8];
    std::snprintf(key, sizeof(key), "k%02d", i);
    ASSERT_TRUE(f.tree->Put(key, "v").ok());
  }
  auto iter = f.tree->NewIterator();
  iter->Seek("k12");
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), "k15");
}

TEST(LsmTreeTest, ManifestRecovery) {
  MemFileSystem fs;
  LsmOptions options;
  options.memtable_bytes = 1024;
  options.table.block_size = 512;
  {
    auto tree = LsmTree::Open(options, &fs, "/db");
    ASSERT_TRUE(tree.ok());
    for (int i = 0; i < 200; i++) {
      ASSERT_TRUE((*tree)->Put("key" + std::to_string(i), "v").ok());
    }
    ASSERT_TRUE((*tree)->FlushMemTable().ok());
  }
  // Reopen from the manifest: flushed data must be visible.
  auto tree = LsmTree::Open(options, &fs, "/db");
  ASSERT_TRUE(tree.ok());
  for (int i = 0; i < 200; i++) {
    EXPECT_TRUE((*tree)->Get("key" + std::to_string(i)).ok()) << i;
  }
}

// Differential property test: random Put/Delete/Get vs a std::map oracle.
class LsmDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, LsmDifferentialTest,
                         ::testing::Values(11ull, 222ull, 3333ull));

TEST_P(LsmDifferentialTest, MatchesMapOracle) {
  LsmFixture f(/*memtable_bytes=*/1024);
  std::map<std::string, std::string> oracle;
  Random rnd(GetParam());
  for (int step = 0; step < 3000; step++) {
    char key[8];
    std::snprintf(key, sizeof(key), "k%03d",
                  static_cast<int>(rnd.Uniform(200)));
    uint64_t action = rnd.Uniform(10);
    if (action < 6) {
      std::string value = "v" + std::to_string(step);
      ASSERT_TRUE(f.tree->Put(key, value).ok());
      oracle[key] = value;
    } else if (action < 8) {
      ASSERT_TRUE(f.tree->Delete(key).ok());
      oracle.erase(key);
    } else {
      auto got = f.tree->Get(key);
      auto want = oracle.find(key);
      if (want == oracle.end()) {
        EXPECT_TRUE(got.status().IsNotFound()) << key;
      } else {
        ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
        EXPECT_EQ(*got, want->second);
      }
    }
    if (step % 500 == 499) {
      ASSERT_TRUE(f.tree->FlushMemTable().ok());
      ASSERT_TRUE(f.tree->CompactUntilQuiet().ok());
    }
  }
  // Full iterator comparison at the end.
  auto iter = f.tree->NewIterator();
  auto want = oracle.begin();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++want) {
    ASSERT_NE(want, oracle.end());
    EXPECT_EQ(iter->key().ToString(), want->first);
    EXPECT_EQ(iter->value().ToString(), want->second);
  }
  EXPECT_EQ(want, oracle.end());
}

}  // namespace
}  // namespace logbase::lsm
