// Unit tests for the fault subsystem: plan determinism, the retry/backoff
// policy, and the injector's delivery/bookkeeping semantics.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/cluster/mini_cluster.h"
#include "src/fault/fault_injector.h"
#include "src/fault/retry_policy.h"
#include "src/sim/sim_context.h"

namespace logbase {
namespace {

using fault::FaultInjector;
using fault::FaultKind;
using fault::FaultPlan;
using fault::FaultTargets;
using fault::RetryOptions;
using fault::RetryPolicy;

// -- FaultPlan ------------------------------------------------------------

TEST(FaultPlanTest, SortedIsStableByTime) {
  FaultPlan plan;
  plan.Crash(500, 1).Heal(100).PartitionNodes(100, 0, 2).Restart(500, 1);
  auto sorted = plan.Sorted();
  ASSERT_EQ(sorted.size(), 4u);
  // Time order, ties keep insertion order.
  EXPECT_EQ(sorted[0].kind, FaultKind::kHealPartition);
  EXPECT_EQ(sorted[1].kind, FaultKind::kPartitionNodes);
  EXPECT_EQ(sorted[2].kind, FaultKind::kCrashServer);
  EXPECT_EQ(sorted[3].kind, FaultKind::kRestartServer);
}

TEST(FaultPlanTest, RandomPlanIsSeedDeterministic) {
  FaultPlan::RandomOptions opts;
  opts.num_nodes = 6;
  opts.num_faults = 12;
  opts.allow_kill = true;
  EXPECT_EQ(FaultPlan::Random(42, opts).ToString(),
            FaultPlan::Random(42, opts).ToString());
  EXPECT_NE(FaultPlan::Random(42, opts).ToString(),
            FaultPlan::Random(43, opts).ToString());
  EXPECT_FALSE(FaultPlan::Random(42, opts).empty());
}

// -- RetryPolicy ----------------------------------------------------------

TEST(RetryPolicyTest, SucceedsWithoutRetryOnOk) {
  RetryPolicy policy{RetryOptions{}};
  int calls = 0;
  Status s = policy.Run("op", [&]() {
    calls++;
    return Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 1);
}

TEST(RetryPolicyTest, RetriesUntilSuccess) {
  RetryPolicy policy{RetryOptions{}};
  int calls = 0;
  Status s = policy.Run("op", [&]() {
    calls++;
    return calls < 3 ? Status::Unavailable("not yet") : Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
}

TEST(RetryPolicyTest, NonRetryableReturnsImmediately) {
  RetryPolicy policy{RetryOptions{}};
  int calls = 0;
  Status s = policy.Run("op", [&]() {
    calls++;
    return Status::InvalidArgument("bad");
  });
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(calls, 1);
}

TEST(RetryPolicyTest, ExhaustionReportsAttemptCount) {
  RetryOptions opts;
  opts.max_attempts = 4;
  RetryPolicy policy{opts};
  int calls = 0;
  Status s = policy.Run("flaky_op", [&]() {
    calls++;
    return Status::Unavailable("down");
  });
  EXPECT_EQ(calls, 4);
  EXPECT_TRUE(s.IsUnavailable());
  // The satellite contract: the error names the op and the attempt count.
  EXPECT_NE(s.ToString().find("flaky_op"), std::string::npos) << s.ToString();
  EXPECT_NE(s.ToString().find("4 attempts"), std::string::npos)
      << s.ToString();
}

TEST(RetryPolicyTest, BackoffGrowsAndIsSeedDeterministic) {
  RetryOptions opts;
  opts.seed = 7;
  RetryPolicy a{opts};
  RetryPolicy b{opts};
  sim::VirtualTime prev = 0;
  for (int attempt = 1; attempt <= 5; attempt++) {
    sim::VirtualTime ba = a.BackoffUs("op", attempt);
    EXPECT_EQ(ba, b.BackoffUs("op", attempt));
    EXPECT_GT(ba, 0);
    if (attempt > 1) EXPECT_GT(ba, prev);
    prev = ba;
  }
  // Different ops jitter differently under the same seed.
  EXPECT_NE(a.BackoffUs("op", 3), a.BackoffUs("other_op", 3));
  // Backoff is capped.
  EXPECT_LE(a.BackoffUs("op", 40),
            static_cast<sim::VirtualTime>(
                opts.max_backoff_us * (1.0 + opts.jitter)) +
                1);
}

TEST(RetryPolicyTest, BackoffAdvancesVirtualTime) {
  sim::SimContext ctx;
  sim::SimContext::Scope scope(&ctx);
  RetryPolicy policy{RetryOptions{}};
  int calls = 0;
  (void)policy.Run("op", [&]() {
    calls++;
    return Status::Unavailable("down");
  });
  EXPECT_EQ(calls, RetryOptions{}.max_attempts);
  EXPECT_GT(ctx.now(), 0);  // the backoffs were charged to the clock
}

TEST(RetryPolicyTest, DeadlineBoundsAttempts) {
  RetryOptions opts;
  opts.max_attempts = 100;
  opts.initial_backoff_us = 1000;
  opts.deadline_us = 2500;  // room for only the first couple of backoffs
  RetryPolicy policy{opts};
  int calls = 0;
  Status s = policy.Run("op", [&]() {
    calls++;
    return Status::Unavailable("down");
  });
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_LT(calls, 10);
}

TEST(RetryPolicyTest, ZeroBudgetDeadlineStillRunsFirstAttempt) {
  // The deadline bounds *backoff*, not the first try: even a budget smaller
  // than any possible backoff gets exactly one attempt, and no virtual time
  // is charged (the check runs before sleeping).
  sim::SimContext ctx;
  sim::SimContext::Scope scope(&ctx);
  RetryOptions opts;
  opts.max_attempts = 100;
  opts.initial_backoff_us = 1000;
  opts.jitter = 0.2;  // min possible first backoff: 800us
  opts.deadline_us = 1;
  RetryPolicy policy{opts};
  int calls = 0;
  Status s = policy.Run("op", [&]() {
    calls++;
    return Status::Unavailable("down");
  });
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(ctx.now(), 0);
}

TEST(RetryPolicyTest, DeadlineExpiringMidBackoffStopsBeforeSleeping) {
  // jitter 0 makes the schedule exact: backoffs are 1000, 2000, 4000...
  // A 2500us deadline admits the first retry (cumulative 1000) but not the
  // second (cumulative 3000) — and the rejected retry charges nothing, so
  // the clock stops at exactly the backoff actually slept.
  sim::SimContext ctx;
  sim::SimContext::Scope scope(&ctx);
  RetryOptions opts;
  opts.max_attempts = 100;
  opts.initial_backoff_us = 1000;
  opts.jitter = 0.0;
  opts.deadline_us = 2500;
  RetryPolicy policy{opts};
  int calls = 0;
  Status s = policy.Run("op", [&]() {
    calls++;
    return Status::Unavailable("down");
  });
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(ctx.now(), 1000);

  // Boundary: cumulative backoff exactly equal to the deadline is within
  // budget (the check is strictly "would cross").
  opts.deadline_us = 1000;
  RetryPolicy exact{opts};
  calls = 0;
  (void)exact.Run("op", [&]() {
    calls++;
    return Status::Unavailable("down");
  });
  EXPECT_EQ(calls, 2);
}

TEST(RetryPolicyTest, DeadlineIsIndependentOfRetryAfterHints) {
  // A QoS retry-after hint shortens the *sleep*, but the deadline budget
  // stays on the nominal backoff schedule — so whether a run exhausts its
  // deadline cannot depend on which attempts happened to carry hints.
  RetryOptions opts;
  opts.max_attempts = 100;
  opts.initial_backoff_us = 1000;
  opts.jitter = 0.0;
  opts.deadline_us = 2500;
  RetryPolicy policy{opts};

  auto run = [&policy](bool hinted, sim::VirtualTime* elapsed) {
    sim::SimContext ctx;
    sim::SimContext::Scope scope(&ctx);
    int calls = 0;
    (void)policy.Run("op", [&]() {
      calls++;
      return hinted ? Status::UnavailableWithRetryAfter("shed", 1)
                    : Status::Unavailable("down");
    });
    *elapsed = ctx.now();
    return calls;
  };

  sim::VirtualTime plain_elapsed = 0, hinted_elapsed = 0;
  int plain_calls = run(false, &plain_elapsed);
  int hinted_calls = run(true, &hinted_elapsed);
  EXPECT_EQ(plain_calls, hinted_calls);  // same attempt budget
  EXPECT_EQ(plain_elapsed, 1000);        // slept the nominal backoff
  EXPECT_EQ(hinted_elapsed, 1);          // slept only to the hint
}

TEST(RetryPolicyTest, ResultOverloadPassesThroughValue) {
  RetryPolicy policy{RetryOptions{}};
  int calls = 0;
  Result<int> r = policy.Run<int>("op", [&]() -> Result<int> {
    calls++;
    if (calls < 2) return Status::Unavailable("not yet");
    return 41 + 1;
  });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(calls, 2);
}

// -- FaultInjector against a synthetic target set -------------------------

struct FakeCluster {
  std::vector<int> crashes;
  std::vector<int> restarts;
  std::vector<int> kills;
  sim::DiskModel disk{"fake.disk"};

  FaultTargets Targets() {
    FaultTargets t;
    t.num_nodes = 4;
    t.crash_server = [this](int n) { crashes.push_back(n); };
    t.restart_server = [this](int n) {
      restarts.push_back(n);
      return Status::OK();
    };
    t.kill_node = [this](int n) {
      kills.push_back(n);
      return Status::OK();
    };
    t.disk = [this](int) { return &disk; };
    t.rack_of = [](int n) { return n / 2; };
    return t;
  }
};

TEST(FaultInjectorTest, FiresEventsInTimeOrder) {
  FakeCluster fake;
  FaultPlan plan;
  plan.Crash(100, 1).Restart(300, 1).Crash(200, 2);
  FaultInjector injector(fake.Targets(), plan);

  auto fired = injector.AdvanceTo(50);
  ASSERT_TRUE(fired.ok());
  EXPECT_EQ(*fired, 0);
  EXPECT_EQ(injector.pending(), 3u);

  fired = injector.AdvanceTo(250);
  ASSERT_TRUE(fired.ok());
  EXPECT_EQ(*fired, 2);
  EXPECT_EQ(fake.crashes, (std::vector<int>{1, 2}));
  EXPECT_EQ(injector.CrashedServers(), (std::vector<int>{1, 2}));

  fired = injector.FireAll();
  ASSERT_TRUE(fired.ok());
  EXPECT_EQ(*fired, 1);
  EXPECT_EQ(fake.restarts, (std::vector<int>{1}));
  EXPECT_EQ(injector.CrashedServers(), (std::vector<int>{2}));
  EXPECT_EQ(injector.pending(), 0u);
}

TEST(FaultInjectorTest, UnwiredTargetIsAnError) {
  FaultTargets t;  // nothing wired
  t.num_nodes = 2;
  FaultPlan plan;
  plan.Crash(10, 0);
  FaultInjector injector(t, plan);
  auto fired = injector.FireAll();
  EXPECT_FALSE(fired.ok());
}

TEST(FaultInjectorTest, PartitionBlocksPairSymmetrically) {
  FakeCluster fake;
  FaultPlan plan;
  plan.PartitionNodes(10, 0, 2);
  FaultInjector injector(fake.Targets(), plan);
  ASSERT_TRUE(injector.FireAll().ok());
  EXPECT_FALSE(injector.Reachable(0, 2));
  EXPECT_FALSE(injector.Reachable(2, 0));
  EXPECT_TRUE(injector.Reachable(0, 1));
  EXPECT_TRUE(injector.Reachable(0, 0));
  injector.HealNetwork();
  EXPECT_TRUE(injector.Reachable(0, 2));
}

TEST(FaultInjectorTest, RackPartitionCutsAllCrossRackLinks) {
  FakeCluster fake;  // racks {0,1} and {2,3}
  FaultPlan plan;
  plan.PartitionRacks(10, 0, 1);
  FaultInjector injector(fake.Targets(), plan);
  ASSERT_TRUE(injector.FireAll().ok());
  EXPECT_FALSE(injector.Reachable(0, 2));
  EXPECT_FALSE(injector.Reachable(1, 3));
  EXPECT_FALSE(injector.Reachable(3, 0));
  EXPECT_TRUE(injector.Reachable(0, 1));  // same rack
  EXPECT_TRUE(injector.Reachable(2, 3));
}

TEST(FaultInjectorTest, DiskStallAppliesAndClears) {
  FakeCluster fake;
  FaultPlan plan;
  plan.DiskStall(10, 0, 5000).DiskClear(20, 0);
  FaultInjector injector(fake.Targets(), plan);
  ASSERT_TRUE(injector.AdvanceTo(10).ok());
  EXPECT_EQ(fake.disk.stall_us(), 5000);
  ASSERT_TRUE(injector.AdvanceTo(20).ok());
  EXPECT_EQ(fake.disk.stall_us(), 0);
}

TEST(FaultInjectorTest, RpcDropIsDeterministicPerSeed) {
  FakeCluster fake;
  FaultPlan plan;
  plan.RpcDrop(0, 500000);  // 50%
  FaultInjector a(fake.Targets(), plan, /*seed=*/9);
  ASSERT_TRUE(a.FireAll().ok());
  std::vector<bool> first;
  for (int i = 0; i < 64; i++) first.push_back(a.Reachable(0, 1));
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);

  FakeCluster fake2;
  FaultPlan plan2;
  plan2.RpcDrop(0, 500000);
  FaultInjector b(fake2.Targets(), plan2, /*seed=*/9);
  ASSERT_TRUE(b.FireAll().ok());
  for (int i = 0; i < 64; i++) EXPECT_EQ(b.Reachable(0, 1), first[i]);
}

TEST(FaultInjectorTest, KillIsTrackedAsPermanent) {
  FakeCluster fake;
  FaultPlan plan;
  plan.Crash(5, 1).Kill(10, 3);
  FaultInjector injector(fake.Targets(), plan);
  ASSERT_TRUE(injector.FireAll().ok());
  EXPECT_TRUE(injector.IsNodeDead(3));
  EXPECT_FALSE(injector.IsNodeDead(1));
  EXPECT_EQ(injector.DeadNodes(), (std::vector<int>{3}));
  EXPECT_EQ(injector.CrashedServers(), (std::vector<int>{1}));
}

// The injector's fault-policy methods are read on every simulated transfer,
// possibly from many workload threads, while another thread advances the
// schedule. This is the chaos-label TSan scenario.
TEST(FaultInjectorTest, ConcurrentReachabilityQueriesAreSafe) {
  FakeCluster fake;
  FaultPlan plan;
  for (int i = 0; i < 50; i++) {
    plan.PartitionNodes(i * 10, i % 4, (i + 1) % 4);
    plan.Heal(i * 10 + 5);
    plan.RpcDelay(i * 10 + 7, 100);
  }
  FaultInjector injector(fake.Targets(), plan);
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; t++) {
    readers.emplace_back([&injector, &stop]() {
      while (!stop.load()) {
        for (int s = 0; s < 4; s++) {
          for (int d = 0; d < 4; d++) {
            (void)injector.Reachable(s, d);
            (void)injector.ExtraDelayUs(s, d);
          }
        }
      }
    });
  }
  for (sim::VirtualTime t = 0; t <= 500; t += 5) {
    ASSERT_TRUE(injector.AdvanceTo(t).ok());
  }
  stop.store(true);
  for (auto& r : readers) r.join();
  EXPECT_EQ(injector.pending(), 0u);
}

// -- Seed replay against a real cluster (the determinism satellite) -------

struct ReplayResult {
  std::vector<std::string> delivered;
  std::string final_value;
  uint64_t metrics_events = 0;
};

ReplayResult RunSeededCrashReplay(uint64_t seed) {
  sim::SimContext ctx;
  sim::SimContext::Scope scope(&ctx);
  cluster::MiniClusterOptions opts;
  opts.num_nodes = 3;
  cluster::MiniCluster cluster(opts);
  EXPECT_TRUE(cluster.Start().ok());
  EXPECT_TRUE(cluster.master()
                  ->CreateTable("t", {"v"}, {{"v"}}, {})
                  .ok());

  FaultPlan plan;
  plan.Crash(2000, 1).DiskStall(3000, 2, 4000).Restart(9000, 1)
      .DiskClear(9500, 2);
  fault::FaultInjector injector(fault::ClusterTargets(&cluster), plan, seed);

  auto client = cluster.NewClient(0);
  ReplayResult result;
  for (int i = 0; i < 40; i++) {
    ctx.Advance(300);
    EXPECT_TRUE(injector.AdvanceTo(ctx.now()).ok());
    (void)cluster.master()->DetectAndHandleFailures();
    (void)client->Put("t", 0, "k", "v" + std::to_string(i), {});
  }
  EXPECT_TRUE(injector.FireAll().ok());
  (void)cluster.master()->DetectAndHandleFailures();
  auto r = client->Get("t", 0, "k", client::ReadOptions{});
  if (r.ok() && r->found()) result.final_value = r->value();
  result.delivered = injector.DeliveredLog();
  return result;
}

TEST(FaultReplayTest, SameSeedSameScheduleAndState) {
  ReplayResult a = RunSeededCrashReplay(1234);
  ReplayResult b = RunSeededCrashReplay(1234);
  ASSERT_FALSE(a.delivered.empty());
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.final_value, b.final_value);
  EXPECT_FALSE(a.final_value.empty());
}

}  // namespace
}  // namespace logbase
