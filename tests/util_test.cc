// Unit and property tests for the utility kernel.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <thread>
#include <vector>

#include "src/util/coding.h"
#include "src/util/comparator.h"
#include "src/util/crc32c.h"
#include "src/util/histogram.h"
#include "src/util/io.h"
#include "src/util/random.h"
#include "src/util/result.h"
#include "src/util/skiplist.h"
#include "src/util/slice.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"

namespace logbase {
namespace {

// ---------------------------------------------------------------------------
// Slice
// ---------------------------------------------------------------------------

TEST(SliceTest, BasicAccessors) {
  Slice s("hello");
  EXPECT_EQ(s.size(), 5u);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s[0], 'h');
  EXPECT_EQ(s.ToString(), "hello");
}

TEST(SliceTest, EmptyByDefault) {
  Slice s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
}

TEST(SliceTest, CompareOrdersLexicographically) {
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  // Prefix sorts first.
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);
}

TEST(SliceTest, StartsWith) {
  EXPECT_TRUE(Slice("tablet/1").starts_with("tablet/"));
  EXPECT_FALSE(Slice("tab").starts_with("tablet/"));
}

TEST(SliceTest, RemovePrefix) {
  Slice s("abcdef");
  s.remove_prefix(2);
  EXPECT_EQ(s.ToString(), "cdef");
}

TEST(SliceTest, EqualityHandlesEmbeddedNul) {
  std::string a("a\0b", 3);
  std::string b("a\0c", 3);
  EXPECT_NE(Slice(a), Slice(b));
  EXPECT_EQ(Slice(a), Slice(std::string("a\0b", 3)));
}

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CodesAndMessages) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: missing key");
  EXPECT_TRUE(Status::Corruption().IsCorruption());
  EXPECT_TRUE(Status::IOError().IsIOError());
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::Unavailable().IsUnavailable());
  EXPECT_TRUE(Status::Busy().IsBusy());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
}

Status FailsWhen(bool fail) {
  if (fail) return Status::IOError("boom");
  return Status::OK();
}

Status UsesReturnNotOk(bool fail) {
  LOGBASE_RETURN_NOT_OK(FailsWhen(fail));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(UsesReturnNotOk(false).ok());
  EXPECT_TRUE(UsesReturnNotOk(true).IsIOError());
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

TEST(ResultTest, HoldsValueOrStatus) {
  auto ok = ParsePositive(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);
  auto bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
  EXPECT_EQ(bad.ValueOr(42), 42);
}

Result<int> Doubles(int v) {
  LOGBASE_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  return parsed * 2;
}

TEST(ResultTest, AssignOrReturn) {
  ASSERT_TRUE(Doubles(4).ok());
  EXPECT_EQ(*Doubles(4), 8);
  EXPECT_TRUE(Doubles(0).status().IsInvalidArgument());
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(9));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> moved = std::move(r).value();
  EXPECT_EQ(*moved, 9);
}

// ---------------------------------------------------------------------------
// Coding
// ---------------------------------------------------------------------------

TEST(CodingTest, FixedRoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xdeadbeefu);
  PutFixed64(&buf, 0x0123456789abcdefull);
  Slice in(buf);
  uint32_t v32;
  uint64_t v64;
  ASSERT_TRUE(GetFixed32(&in, &v32));
  ASSERT_TRUE(GetFixed64(&in, &v64));
  EXPECT_EQ(v32, 0xdeadbeefu);
  EXPECT_EQ(v64, 0x0123456789abcdefull);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, VarintRoundTripBoundaries) {
  std::vector<uint64_t> values = {0, 1, 127, 128, 16383, 16384,
                                  (1ull << 32) - 1, 1ull << 32, ~0ull};
  std::string buf;
  for (uint64_t v : values) PutVarint64(&buf, v);
  Slice in(buf);
  for (uint64_t v : values) {
    uint64_t got;
    ASSERT_TRUE(GetVarint64(&in, &got));
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, Varint32RejectsTruncation) {
  std::string buf;
  PutVarint32(&buf, 1 << 20);
  buf.resize(buf.size() - 1);
  Slice in(buf);
  uint32_t v;
  EXPECT_FALSE(GetVarint32(&in, &v));
}

TEST(CodingTest, LengthPrefixedSlice) {
  std::string buf;
  PutLengthPrefixedSlice(&buf, Slice("hello"));
  PutLengthPrefixedSlice(&buf, Slice(""));
  Slice in(buf), a, b;
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &a));
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &b));
  EXPECT_EQ(a.ToString(), "hello");
  EXPECT_TRUE(b.empty());
}

TEST(CodingTest, VarintLengthMatchesEncoding) {
  for (uint64_t v : {0ull, 127ull, 128ull, 300ull, ~0ull}) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(static_cast<int>(buf.size()), VarintLength(v));
  }
}

// Property: random values round-trip through a mixed encoding.
TEST(CodingTest, PropertyMixedRoundTrip) {
  Random rnd(301);
  for (int iter = 0; iter < 200; iter++) {
    uint64_t v64 = rnd.Next();
    uint32_t v32 = static_cast<uint32_t>(rnd.Next());
    std::string payload(rnd.Uniform(64), static_cast<char>(rnd.Uniform(256)));
    std::string buf;
    PutVarint64(&buf, v64);
    PutFixed32(&buf, v32);
    PutLengthPrefixedSlice(&buf, Slice(payload));
    Slice in(buf);
    uint64_t got64;
    uint32_t got32;
    Slice got_payload;
    ASSERT_TRUE(GetVarint64(&in, &got64));
    ASSERT_TRUE(GetFixed32(&in, &got32));
    ASSERT_TRUE(GetLengthPrefixedSlice(&in, &got_payload));
    EXPECT_EQ(got64, v64);
    EXPECT_EQ(got32, v32);
    EXPECT_EQ(got_payload.ToString(), payload);
    EXPECT_TRUE(in.empty());
  }
}

// ---------------------------------------------------------------------------
// CRC32C
// ---------------------------------------------------------------------------

TEST(Crc32cTest, KnownVectors) {
  // Standard CRC32C check value: "123456789" -> 0xe3069283.
  EXPECT_EQ(crc32c::Value("123456789", 9), 0xe3069283u);
}

TEST(Crc32cTest, ExtendEqualsWhole) {
  const char* data = "hello world";
  uint32_t whole = crc32c::Value(data, 11);
  uint32_t split = crc32c::Extend(crc32c::Value(data, 5), data + 5, 6);
  EXPECT_EQ(whole, split);
}

TEST(Crc32cTest, MaskUnmaskInverse) {
  for (uint32_t crc : {0u, 1u, 0xffffffffu, 0x12345678u}) {
    EXPECT_EQ(crc32c::Unmask(crc32c::Mask(crc)), crc);
    EXPECT_NE(crc32c::Mask(crc), crc);
  }
}

TEST(Crc32cTest, DetectsSingleBitFlip) {
  std::string data(128, 'a');
  uint32_t clean = crc32c::Value(data.data(), data.size());
  data[17] ^= 0x4;
  EXPECT_NE(clean, crc32c::Value(data.data(), data.size()));
}

// ---------------------------------------------------------------------------
// Random / zipfian
// ---------------------------------------------------------------------------

TEST(RandomTest, UniformWithinBounds) {
  Random rnd(7);
  for (int i = 0; i < 1000; i++) {
    EXPECT_LT(rnd.Uniform(10), 10u);
  }
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rnd(8);
  for (int i = 0; i < 1000; i++) {
    double d = rnd.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, DeterministicForSeed) {
  Random a(99), b(99);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(ZipfianTest, SkewsTowardPopularItems) {
  Random rnd(13);
  ZipfianGenerator zipf(1000);
  std::map<uint64_t, int> counts;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; i++) {
    uint64_t v = zipf.Next(&rnd);
    ASSERT_LT(v, 1000u);
    counts[v]++;
  }
  // Item 0 must be far more popular than the tail median.
  EXPECT_GT(counts[0], kDraws / 100);
  int tail = 0;
  for (uint64_t i = 500; i < 510; i++) tail += counts[i];
  EXPECT_GT(counts[0], tail);
}

TEST(ScrambledZipfianTest, SpreadsHotItems) {
  Random rnd(17);
  ScrambledZipfianGenerator zipf(1000);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; i++) {
    counts[zipf.Next(&rnd)]++;
  }
  // The hottest item should NOT be item 0 with overwhelming likelihood
  // (hashing scatters popularity); just assert skew exists somewhere.
  int max_count = 0;
  for (const auto& [k, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 200);  // ~1% of draws on the hottest key
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (int i = 1; i <= 100; i++) h.Add(i);
  EXPECT_EQ(h.num(), 100u);
  EXPECT_DOUBLE_EQ(h.min(), 1);
  EXPECT_DOUBLE_EQ(h.max(), 100);
  EXPECT_NEAR(h.Average(), 50.5, 0.01);
  EXPECT_NEAR(h.Median(), 50, 5);
  EXPECT_NEAR(h.Percentile(95), 95, 8);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  for (int i = 0; i < 50; i++) a.Add(10);
  for (int i = 0; i < 50; i++) b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(a.num(), 100u);
  EXPECT_NEAR(a.Average(), 505, 1);
  EXPECT_DOUBLE_EQ(a.max(), 1000);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.num(), 0u);
  EXPECT_EQ(h.Average(), 0);
  EXPECT_EQ(h.Percentile(99), 0);
}

// ---------------------------------------------------------------------------
// SkipList
// ---------------------------------------------------------------------------

struct IntCmp {
  int operator()(int a, int b) const { return a < b ? -1 : (a > b ? 1 : 0); }
};

TEST(SkipListTest, InsertAndContains) {
  SkipList<int, IntCmp> list{IntCmp()};
  for (int i : {5, 1, 9, 3, 7}) list.Insert(i);
  for (int i : {1, 3, 5, 7, 9}) EXPECT_TRUE(list.Contains(i));
  for (int i : {0, 2, 4, 6, 8, 10}) EXPECT_FALSE(list.Contains(i));
}

TEST(SkipListTest, IteratorSortedOrder) {
  SkipList<int, IntCmp> list{IntCmp()};
  std::set<int> expected;
  Random rnd(5);
  for (int i = 0; i < 500; i++) {
    int v = static_cast<int>(rnd.Uniform(10000));
    if (expected.insert(v).second) list.Insert(v);
  }
  SkipList<int, IntCmp>::Iterator iter(&list);
  iter.SeekToFirst();
  for (int v : expected) {
    ASSERT_TRUE(iter.Valid());
    EXPECT_EQ(iter.key(), v);
    iter.Next();
  }
  EXPECT_FALSE(iter.Valid());
}

TEST(SkipListTest, SeekFindsFirstGE) {
  SkipList<int, IntCmp> list{IntCmp()};
  for (int i = 0; i < 100; i += 10) list.Insert(i);
  SkipList<int, IntCmp>::Iterator iter(&list);
  iter.Seek(35);
  ASSERT_TRUE(iter.Valid());
  EXPECT_EQ(iter.key(), 40);
  iter.Seek(90);
  ASSERT_TRUE(iter.Valid());
  EXPECT_EQ(iter.key(), 90);
  iter.Seek(91);
  EXPECT_FALSE(iter.Valid());
}

TEST(SkipListTest, ConcurrentReadersDuringWrites) {
  SkipList<int, IntCmp> list{IntCmp()};
  std::atomic<bool> done{false};
  std::atomic<int> inserted{0};
  std::thread writer([&] {
    for (int i = 0; i < 20000; i++) {
      list.Insert(i);
      inserted.store(i + 1, std::memory_order_release);
    }
    done.store(true);
  });
  std::thread reader([&] {
    Random rnd(3);
    while (!done.load()) {
      int upper = inserted.load(std::memory_order_acquire);
      if (upper == 0) continue;
      int probe = static_cast<int>(rnd.Uniform(upper));
      EXPECT_TRUE(list.Contains(probe));
    }
  });
  writer.join();
  reader.join();
  EXPECT_TRUE(list.Contains(19999));
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; i++) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

// ---------------------------------------------------------------------------
// MemFileSystem
// ---------------------------------------------------------------------------

TEST(MemFileSystemTest, WriteThenRead) {
  MemFileSystem fs;
  auto wf = fs.NewWritableFile("/a");
  ASSERT_TRUE(wf.ok());
  ASSERT_TRUE((*wf)->Append("hello ").ok());
  ASSERT_TRUE((*wf)->Append("world").ok());
  EXPECT_EQ((*wf)->Size(), 11u);
  auto rf = fs.NewRandomAccessFile("/a");
  ASSERT_TRUE(rf.ok());
  auto data = (*rf)->Read(6, 5);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "world");
}

TEST(MemFileSystemTest, ReadPastEofIsShort) {
  MemFileSystem fs;
  auto wf = fs.NewWritableFile("/a");
  ASSERT_TRUE((*wf)->Append("abc").ok());
  auto rf = fs.NewRandomAccessFile("/a");
  EXPECT_EQ(*(*rf)->Read(2, 100), "c");
  EXPECT_EQ(*(*rf)->Read(100, 10), "");
}

TEST(MemFileSystemTest, DeleteAndExists) {
  MemFileSystem fs;
  ASSERT_TRUE(fs.NewWritableFile("/x").ok());
  EXPECT_TRUE(fs.Exists("/x"));
  EXPECT_TRUE(fs.DeleteFile("/x").ok());
  EXPECT_FALSE(fs.Exists("/x"));
  EXPECT_TRUE(fs.DeleteFile("/x").IsNotFound());
}

TEST(MemFileSystemTest, OpenReaderSurvivesDelete) {
  MemFileSystem fs;
  auto wf = fs.NewWritableFile("/x");
  ASSERT_TRUE((*wf)->Append("keep").ok());
  auto rf = fs.NewRandomAccessFile("/x");
  ASSERT_TRUE(rf.ok());
  ASSERT_TRUE(fs.DeleteFile("/x").ok());
  EXPECT_EQ(*(*rf)->Read(0, 4), "keep");
}

TEST(MemFileSystemTest, RenameMovesContents) {
  MemFileSystem fs;
  auto wf = fs.NewWritableFile("/from");
  ASSERT_TRUE((*wf)->Append("data").ok());
  ASSERT_TRUE(fs.Rename("/from", "/to").ok());
  EXPECT_FALSE(fs.Exists("/from"));
  EXPECT_EQ(*fs.FileSize("/to"), 4u);
}

TEST(MemFileSystemTest, ListByPrefix) {
  MemFileSystem fs;
  ASSERT_TRUE(fs.NewWritableFile("/dir/a").ok());
  ASSERT_TRUE(fs.NewWritableFile("/dir/b").ok());
  ASSERT_TRUE(fs.NewWritableFile("/other/c").ok());
  auto names = fs.List("/dir/");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 2u);
}

// Size() is a lock-free fast path read concurrently with Append (the log
// writer polls it while the flush thread appends). It must never tear or go
// backwards: each observed value is a size some completed Append produced.
TEST(MemFileSystemTest, ConcurrentSizeReadsDuringAppend) {
  MemFileSystem fs;
  auto wf = fs.NewWritableFile("/concurrent");
  ASSERT_TRUE(wf.ok());
  WritableFile* file = wf->get();

  constexpr int kAppends = 2000;
  constexpr size_t kChunk = 32;
  const std::string chunk(kChunk, 'x');

  std::thread writer([&] {
    for (int i = 0; i < kAppends; i++) {
      ASSERT_TRUE(file->Append(chunk).ok());
    }
  });
  uint64_t last = 0;
  bool monotonic = true;
  bool aligned = true;
  while (last < kAppends * kChunk) {
    uint64_t now = file->Size();
    if (now < last) monotonic = false;
    if (now % kChunk != 0) aligned = false;
    last = std::max(last, now);
  }
  writer.join();
  EXPECT_TRUE(monotonic) << "Size() went backwards";
  EXPECT_TRUE(aligned) << "Size() observed a torn mid-append value";
  EXPECT_EQ(file->Size(), kAppends * kChunk);
}

// ---------------------------------------------------------------------------
// Comparator
// ---------------------------------------------------------------------------

TEST(ComparatorTest, BytewiseSingleton) {
  const Comparator* cmp = BytewiseComparator();
  EXPECT_EQ(cmp, BytewiseComparator());
  EXPECT_LT(cmp->Compare("a", "b"), 0);
  EXPECT_EQ(cmp->Compare("a", "a"), 0);
}

}  // namespace
}  // namespace logbase
