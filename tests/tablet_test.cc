// Tests for the tablet server: read buffer, data operations, multiversion
// access, checkpointing, crash recovery and log compaction.

#include <gtest/gtest.h>

#include <set>

#include "src/dfs/dfs.h"
#include "src/tablet/read_buffer.h"
#include "src/tablet/tablet_server.h"

namespace logbase::tablet {
namespace {

// ---------------------------------------------------------------------------
// Read buffer
// ---------------------------------------------------------------------------

TEST(ReadBufferTest, HitAndMiss) {
  ReadBuffer buffer(1024, MakeLruPolicy());
  CachedRecord rec;
  EXPECT_FALSE(buffer.Get("k", &rec));
  buffer.Put("k", CachedRecord{1, "v"});
  ASSERT_TRUE(buffer.Get("k", &rec));
  EXPECT_EQ(rec.value, "v");
  EXPECT_EQ(buffer.hits(), 1u);
  EXPECT_EQ(buffer.misses(), 1u);
}

TEST(ReadBufferTest, KeepsNewerVersionOnConflict) {
  ReadBuffer buffer(1024, MakeLruPolicy());
  buffer.Put("k", CachedRecord{5, "newer"});
  buffer.Put("k", CachedRecord{3, "older"});
  CachedRecord rec;
  ASSERT_TRUE(buffer.Get("k", &rec));
  EXPECT_EQ(rec.value, "newer");
  EXPECT_EQ(rec.timestamp, 5u);
}

TEST(ReadBufferTest, LruEvictsColdEntries) {
  ReadBuffer buffer(30, MakeLruPolicy());
  buffer.Put("a", CachedRecord{1, std::string(9, 'x')});  // 10 bytes
  buffer.Put("b", CachedRecord{1, std::string(9, 'x')});
  CachedRecord rec;
  ASSERT_TRUE(buffer.Get("a", &rec));  // touch a; b is now LRU
  buffer.Put("c", CachedRecord{1, std::string(9, 'x')});
  buffer.Put("d", CachedRecord{1, std::string(9, 'x')});
  EXPECT_FALSE(buffer.Get("b", &rec));
  EXPECT_TRUE(buffer.Get("a", &rec));
}

TEST(ReadBufferTest, FifoIgnoresAccessRecency) {
  ReadBuffer buffer(30, MakeFifoPolicy());
  buffer.Put("a", CachedRecord{1, std::string(9, 'x')});
  buffer.Put("b", CachedRecord{1, std::string(9, 'x')});
  CachedRecord rec;
  ASSERT_TRUE(buffer.Get("a", &rec));  // does not save "a" under FIFO
  buffer.Put("c", CachedRecord{1, std::string(9, 'x')});
  buffer.Put("d", CachedRecord{1, std::string(9, 'x')});
  EXPECT_FALSE(buffer.Get("a", &rec));  // first in, first out
}

TEST(ReadBufferTest, InvalidateRemoves) {
  ReadBuffer buffer(1024, MakeLruPolicy());
  buffer.Put("k", CachedRecord{1, "v"});
  buffer.Invalidate("k");
  CachedRecord rec;
  EXPECT_FALSE(buffer.Get("k", &rec));
}

TEST(ReadBufferTest, DisabledBufferIsNoop) {
  ReadBuffer buffer(0, MakeLruPolicy());
  EXPECT_FALSE(buffer.enabled());
  buffer.Put("k", CachedRecord{1, "v"});
  CachedRecord rec;
  EXPECT_FALSE(buffer.Get("k", &rec));
}

TEST(ReadBufferTest, PolicyFactoryByName) {
  EXPECT_STREQ(MakePolicy("lru")->Name(), "lru");
  EXPECT_STREQ(MakePolicy("fifo")->Name(), "fifo");
  EXPECT_STREQ(MakePolicy("unknown")->Name(), "lru");  // default
}

// ---------------------------------------------------------------------------
// Tablet server fixture
// ---------------------------------------------------------------------------

TabletDescriptor Descriptor(uint32_t table = 1, uint32_t group = 0,
                            uint32_t range = 0) {
  TabletDescriptor d;
  d.table_id = table;
  d.table_name = "t";
  d.column_group = group;
  d.range_id = range;
  return d;
}

struct ServerFixture {
  dfs::DfsOptions dfs_options;
  std::unique_ptr<dfs::Dfs> dfs;
  coord::CoordinationService coord;
  std::unique_ptr<TabletServer> server;
  std::string uid;

  explicit ServerFixture(TabletServerOptions options = {},
                         uint64_t segment_bytes = 1 << 16) {
    dfs_options.num_nodes = 3;
    dfs = std::make_unique<dfs::Dfs>(dfs_options);
    options.segment_bytes = segment_bytes;
    server = std::make_unique<TabletServer>(options, dfs.get(), &coord);
    EXPECT_TRUE(server->Start().ok());
    TabletDescriptor d = Descriptor();
    uid = d.uid();
    EXPECT_TRUE(server->OpenTablet(d).ok());
  }
};

TEST(TabletServerTest, PutGet) {
  ServerFixture f;
  ASSERT_TRUE(f.server->Put(f.uid, "user1", "hello").ok());
  auto read = f.server->Get(f.uid, "user1");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->value, "hello");
  EXPECT_GT(read->timestamp, 0u);
}

TEST(TabletServerTest, GetMissingKey) {
  ServerFixture f;
  EXPECT_TRUE(f.server->Get(f.uid, "ghost").status().IsNotFound());
}

TEST(TabletServerTest, UnknownTabletRejected) {
  ServerFixture f;
  EXPECT_TRUE(f.server->Put("t9.g9.r9", "k", "v").IsNotFound());
}

TEST(TabletServerTest, OverwriteCreatesNewVersion) {
  ServerFixture f;
  ASSERT_TRUE(f.server->Put(f.uid, "k", "v1").ok());
  auto first = f.server->Get(f.uid, "k");
  ASSERT_TRUE(f.server->Put(f.uid, "k", "v2").ok());
  auto second = f.server->Get(f.uid, "k");
  EXPECT_EQ(second->value, "v2");
  EXPECT_GT(second->timestamp, first->timestamp);

  // Historical read at the first version's timestamp (§3.6.2).
  auto historical = f.server->GetAsOf(f.uid, "k", first->timestamp);
  ASSERT_TRUE(historical.ok());
  EXPECT_EQ(historical->value, "v1");

  auto versions = f.server->GetVersions(f.uid, "k");
  ASSERT_TRUE(versions.ok());
  ASSERT_EQ(versions->size(), 2u);
  EXPECT_EQ((*versions)[0].value, "v2");  // newest first
  EXPECT_EQ((*versions)[1].value, "v1");
}

TEST(TabletServerTest, DeleteHidesAllVersions) {
  ServerFixture f;
  ASSERT_TRUE(f.server->Put(f.uid, "k", "v1").ok());
  ASSERT_TRUE(f.server->Put(f.uid, "k", "v2").ok());
  ASSERT_TRUE(f.server->Delete(f.uid, "k").ok());
  EXPECT_TRUE(f.server->Get(f.uid, "k").status().IsNotFound());
  EXPECT_TRUE(f.server->GetAsOf(f.uid, "k", ~0ull).status().IsNotFound());
  EXPECT_TRUE(f.server->GetVersions(f.uid, "k")->empty());
  // Reinsertion works.
  ASSERT_TRUE(f.server->Put(f.uid, "k", "reborn").ok());
  EXPECT_EQ(f.server->Get(f.uid, "k")->value, "reborn");
}

TEST(TabletServerTest, ScanReturnsSortedLatestVersions) {
  ServerFixture f;
  for (int i = 9; i >= 0; i--) {
    ASSERT_TRUE(
        f.server->Put(f.uid, "key" + std::to_string(i), "v" + std::to_string(i))
            .ok());
  }
  ASSERT_TRUE(f.server->Put(f.uid, "key3", "v3-updated").ok());
  auto rows = f.server->Scan(f.uid, "key2", "key6", ~0ull);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 4u);
  EXPECT_EQ((*rows)[0].key, "key2");
  EXPECT_EQ((*rows)[1].value, "v3-updated");
  EXPECT_EQ((*rows)[3].key, "key5");
}

TEST(TabletServerTest, PutBatchGroupCommits) {
  ServerFixture f;
  std::vector<std::pair<std::string, std::string>> kvs;
  for (int i = 0; i < 50; i++) {
    kvs.emplace_back("batch" + std::to_string(i), "v" + std::to_string(i));
  }
  ASSERT_TRUE(f.server->PutBatch(f.uid, kvs).ok());
  for (const auto& [k, v] : kvs) {
    EXPECT_EQ(f.server->Get(f.uid, k)->value, v);
  }
}

TEST(TabletServerTest, ReadBufferServesRepeatReads) {
  TabletServerOptions options;
  options.read_buffer_bytes = 1 << 20;
  ServerFixture f(options);
  ASSERT_TRUE(f.server->Put(f.uid, "hot", "value").ok());
  ASSERT_TRUE(f.server->Get(f.uid, "hot").ok());
  uint64_t hits_before = f.server->read_buffer()->hits();
  ASSERT_TRUE(f.server->Get(f.uid, "hot").ok());
  EXPECT_GT(f.server->read_buffer()->hits(), hits_before);
}

TEST(TabletServerTest, FullScanCountsLiveRecords) {
  ServerFixture f;
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(f.server->Put(f.uid, "k" + std::to_string(i), "v").ok());
  }
  // Overwrites and deletes leave stale log entries that must not count.
  ASSERT_TRUE(f.server->Put(f.uid, "k3", "v2").ok());
  ASSERT_TRUE(f.server->Delete(f.uid, "k5").ok());
  auto live = f.server->FullScanCount(f.uid);
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(*live, 19u);  // 20 - 1 deleted
}

TEST(TabletServerTest, OpsRejectedWhileDown) {
  ServerFixture f;
  f.server->Crash();
  EXPECT_TRUE(f.server->Put(f.uid, "k", "v").IsUnavailable());
  EXPECT_TRUE(f.server->Get(f.uid, "k").status().IsUnavailable());
}

TEST(TabletServerTest, MultipleTabletsShareOneLog) {
  ServerFixture f;
  TabletDescriptor d2 = Descriptor(1, 1, 0);  // second column group
  ASSERT_TRUE(f.server->OpenTablet(d2).ok());
  ASSERT_TRUE(f.server->Put(f.uid, "k", "group0").ok());
  ASSERT_TRUE(f.server->Put(d2.uid(), "k", "group1").ok());
  EXPECT_EQ(f.server->Get(f.uid, "k")->value, "group0");
  EXPECT_EQ(f.server->Get(d2.uid(), "k")->value, "group1");
  // One shared log instance: both records live in the same directory.
  auto segments = f.server->ReaderFor(f.server->server_id());
  ASSERT_TRUE(segments.ok());
  EXPECT_EQ((*segments)->ListSegments()->size(), 1u);
}

// ---------------------------------------------------------------------------
// Checkpoint + recovery
// ---------------------------------------------------------------------------

TEST(RecoveryTest, RestartWithoutCheckpointReplaysWholeLog) {
  ServerFixture f;
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(f.server->Put(f.uid, "k" + std::to_string(i), "v").ok());
  }
  f.server->Crash();
  RecoveryStats stats;
  ASSERT_TRUE(f.server->Start(&stats).ok());
  EXPECT_FALSE(stats.loaded_checkpoint);
  EXPECT_EQ(stats.redo_records, 100u);
  for (int i = 0; i < 100; i++) {
    EXPECT_TRUE(f.server->Get(f.uid, "k" + std::to_string(i)).ok()) << i;
  }
}

TEST(RecoveryTest, CheckpointShrinksRedoWork) {
  ServerFixture f;
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(f.server->Put(f.uid, "a" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(f.server->Checkpoint().ok());
  for (int i = 0; i < 25; i++) {
    ASSERT_TRUE(f.server->Put(f.uid, "b" + std::to_string(i), "v").ok());
  }
  f.server->Crash();
  RecoveryStats stats;
  ASSERT_TRUE(f.server->Start(&stats).ok());
  EXPECT_TRUE(stats.loaded_checkpoint);
  EXPECT_EQ(stats.checkpoint_entries, 100u);
  EXPECT_EQ(stats.redo_records, 25u);  // only the tail
  EXPECT_TRUE(f.server->Get(f.uid, "a99").ok());
  EXPECT_TRUE(f.server->Get(f.uid, "b24").ok());
}

TEST(RecoveryTest, DeleteIsDurableAcrossRestart) {
  ServerFixture f;
  ASSERT_TRUE(f.server->Put(f.uid, "gone", "v").ok());
  ASSERT_TRUE(f.server->Checkpoint().ok());  // checkpoint CONTAINS the key
  ASSERT_TRUE(f.server->Delete(f.uid, "gone").ok());
  f.server->Crash();
  ASSERT_TRUE(f.server->Start().ok());
  // The invalidated entry in the tail re-applies the deletion (§3.6.3).
  EXPECT_TRUE(f.server->Get(f.uid, "gone").status().IsNotFound());
}

TEST(RecoveryTest, RepeatedCrashDuringRecoveryIsIdempotent) {
  ServerFixture f;
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(f.server->Put(f.uid, "k" + std::to_string(i), "v").ok());
  }
  for (int crash = 0; crash < 3; crash++) {
    f.server->Crash();
    ASSERT_TRUE(f.server->Start().ok());
  }
  for (int i = 0; i < 50; i++) {
    EXPECT_TRUE(f.server->Get(f.uid, "k" + std::to_string(i)).ok());
  }
}

TEST(RecoveryTest, WritesAfterRecoveryGetFreshLsns) {
  ServerFixture f;
  ASSERT_TRUE(f.server->Put(f.uid, "pre", "v").ok());
  f.server->Crash();
  ASSERT_TRUE(f.server->Start().ok());
  ASSERT_TRUE(f.server->Put(f.uid, "post", "v").ok());
  // Both visible; a second crash/restart still recovers both.
  f.server->Crash();
  ASSERT_TRUE(f.server->Start().ok());
  EXPECT_TRUE(f.server->Get(f.uid, "pre").ok());
  EXPECT_TRUE(f.server->Get(f.uid, "post").ok());
}

TEST(RecoveryTest, MultiVersionHistorySurvivesRestart) {
  ServerFixture f;
  ASSERT_TRUE(f.server->Put(f.uid, "k", "v1").ok());
  auto first = f.server->Get(f.uid, "k");
  ASSERT_TRUE(f.server->Put(f.uid, "k", "v2").ok());
  f.server->Crash();
  ASSERT_TRUE(f.server->Start().ok());
  EXPECT_EQ(f.server->Get(f.uid, "k")->value, "v2");
  EXPECT_EQ(f.server->GetAsOf(f.uid, "k", first->timestamp)->value, "v1");
}

TEST(RecoveryTest, AutoCheckpointAtThreshold) {
  TabletServerOptions options;
  options.checkpoint_update_threshold = 50;
  ServerFixture f(options);
  for (int i = 0; i < 60; i++) {
    ASSERT_TRUE(f.server->Put(f.uid, "k" + std::to_string(i), "v").ok());
  }
  f.server->Crash();
  RecoveryStats stats;
  ASSERT_TRUE(f.server->Start(&stats).ok());
  EXPECT_TRUE(stats.loaded_checkpoint);
  EXPECT_LT(stats.redo_records, 60u);
}

TEST(RecoveryTest, AdoptTabletFromDeadServer) {
  dfs::DfsOptions dfs_options;
  dfs_options.num_nodes = 3;
  dfs::Dfs shared_dfs(dfs_options);
  coord::CoordinationService coord;

  TabletServerOptions opt0;
  opt0.server_id = 0;
  TabletServer dead(opt0, &shared_dfs, &coord);
  ASSERT_TRUE(dead.Start().ok());
  TabletDescriptor d = Descriptor();
  ASSERT_TRUE(dead.OpenTablet(d).ok());
  for (int i = 0; i < 40; i++) {
    ASSERT_TRUE(dead.Put(d.uid(), "k" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(dead.Checkpoint().ok());
  for (int i = 40; i < 50; i++) {
    ASSERT_TRUE(dead.Put(d.uid(), "k" + std::to_string(i), "v").ok());
  }
  dead.Crash();  // permanent failure

  TabletServerOptions opt1;
  opt1.server_id = 1;
  TabletServer heir(opt1, &shared_dfs, &coord);
  ASSERT_TRUE(heir.Start().ok());
  ASSERT_TRUE(heir.AdoptTablet(d, /*dead_instance=*/0).ok());
  // Checkpointed AND tail records are all served by the heir, reading the
  // dead server's log from the shared DFS.
  for (int i = 0; i < 50; i++) {
    EXPECT_TRUE(heir.Get(d.uid(), "k" + std::to_string(i)).ok()) << i;
  }
  // New writes go to the heir's own log.
  ASSERT_TRUE(heir.Put(d.uid(), "new", "v").ok());
  EXPECT_TRUE(heir.Get(d.uid(), "new").ok());
}

// ---------------------------------------------------------------------------
// Log compaction
// ---------------------------------------------------------------------------

TEST(CompactionTest, DropsObsoleteVersionsWhenCapped) {
  ServerFixture f;
  for (int v = 0; v < 10; v++) {
    ASSERT_TRUE(f.server->Put(f.uid, "multi", "v" + std::to_string(v)).ok());
  }
  CompactionOptions options;
  options.max_versions_per_key = 2;
  CompactionStats stats;
  ASSERT_TRUE(f.server->CompactLog(options, &stats).ok());
  EXPECT_EQ(stats.input_records, 10u);
  EXPECT_EQ(stats.output_records, 2u);
  EXPECT_EQ(stats.dropped_obsolete, 8u);
  EXPECT_EQ(f.server->Get(f.uid, "multi")->value, "v9");
}

TEST(CompactionTest, DropsInvalidatedEntries) {
  ServerFixture f;
  ASSERT_TRUE(f.server->Put(f.uid, "dead", "v1").ok());
  ASSERT_TRUE(f.server->Put(f.uid, "dead", "v2").ok());
  ASSERT_TRUE(f.server->Put(f.uid, "alive", "v").ok());
  ASSERT_TRUE(f.server->Delete(f.uid, "dead").ok());
  CompactionStats stats;
  ASSERT_TRUE(f.server->CompactLog({}, &stats).ok());
  EXPECT_EQ(stats.dropped_invalidated, 2u);
  EXPECT_EQ(stats.output_records, 1u);
  EXPECT_TRUE(f.server->Get(f.uid, "dead").status().IsNotFound());
  EXPECT_EQ(f.server->Get(f.uid, "alive")->value, "v");
}

TEST(CompactionTest, ReadsWorkAfterInputReclamation) {
  ServerFixture f;
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(f.server->Put(f.uid, "k" + std::to_string(i),
                              "value" + std::to_string(i))
                    .ok());
  }
  auto reader = f.server->ReaderFor(f.server->server_id());
  size_t segments_before = (*reader)->ListSegments()->size();
  CompactionStats stats;
  ASSERT_TRUE(f.server->CompactLog({}, &stats).ok());
  EXPECT_EQ(stats.output_records, 200u);
  // All keys readable through the swung pointers into sorted segments.
  for (int i = 0; i < 200; i++) {
    EXPECT_EQ(f.server->Get(f.uid, "k" + std::to_string(i))->value,
              "value" + std::to_string(i))
        << i;
  }
  auto segments_after = (*reader)->ListSegments();
  // Inputs deleted; outputs live in the generation lane.
  bool has_high_lane = false;
  for (uint32_t seg : *segments_after) {
    if ((seg >> 24) > 0) has_high_lane = true;
  }
  EXPECT_TRUE(has_high_lane);
  EXPECT_LE(segments_after->size(), segments_before + 1);
}

TEST(CompactionTest, SortedOutputClustersKeyRanges) {
  ServerFixture f;
  Random rnd(9);
  for (int i = 0; i < 300; i++) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%05d", static_cast<int>(rnd.Uniform(100000)));
    ASSERT_TRUE(f.server->Put(f.uid, key, "v").ok());
  }
  ASSERT_TRUE(f.server->CompactLog().ok());
  // After compaction, scanning a range yields monotonically increasing log
  // offsets (clustered data) — the property behind Figure 10.
  auto rows = f.server->Scan(f.uid, "", "", ~0ull);
  ASSERT_TRUE(rows.ok());
  Tablet* tablet = f.server->FindTablet(f.uid);
  uint64_t last_offset = 0;
  uint32_t segment = 0;
  std::string last_key;
  for (const auto& row : *rows) {
    auto entry = tablet->index()->GetLatest(Slice(row.key));
    ASSERT_TRUE(entry.ok());
    if (segment == entry->ptr.segment) {
      EXPECT_GT(entry->ptr.offset, last_offset) << row.key;
    }
    segment = entry->ptr.segment;
    last_offset = entry->ptr.offset;
    if (!last_key.empty()) EXPECT_GT(row.key, last_key);
    last_key = row.key;
  }
}

TEST(CompactionTest, ServesNewWritesDuringAndAfter) {
  ServerFixture f;
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(f.server->Put(f.uid, "old" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(f.server->CompactLog().ok());
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(f.server->Put(f.uid, "new" + std::to_string(i), "v").ok());
  }
  // A second compaction folds the previous outputs + tail together.
  CompactionStats stats;
  ASSERT_TRUE(f.server->CompactLog({}, &stats).ok());
  EXPECT_EQ(stats.output_records, 100u);
  EXPECT_TRUE(f.server->Get(f.uid, "old0").ok());
  EXPECT_TRUE(f.server->Get(f.uid, "new49").ok());
}

TEST(CompactionTest, RecoveryAfterCompactionUsesItsCheckpoint) {
  ServerFixture f;
  for (int i = 0; i < 80; i++) {
    ASSERT_TRUE(f.server->Put(f.uid, "k" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(f.server->CompactLog().ok());
  ASSERT_TRUE(f.server->Put(f.uid, "after", "v").ok());
  f.server->Crash();
  RecoveryStats stats;
  ASSERT_TRUE(f.server->Start(&stats).ok());
  EXPECT_TRUE(stats.loaded_checkpoint);
  EXPECT_EQ(stats.redo_records, 1u);  // only the post-compaction write
  for (int i = 0; i < 80; i++) {
    EXPECT_TRUE(f.server->Get(f.uid, "k" + std::to_string(i)).ok());
  }
  EXPECT_TRUE(f.server->Get(f.uid, "after").ok());
}

TEST(CompactionTest, DeleteDuringCompactionWindowNotResurrected) {
  ServerFixture f;
  ASSERT_TRUE(f.server->Put(f.uid, "victim", "v").ok());
  ASSERT_TRUE(f.server->CompactLog().ok());
  // Delete after compaction; then compact again — the old version must not
  // come back (UpdateIfPresent never re-creates removed entries).
  ASSERT_TRUE(f.server->Delete(f.uid, "victim").ok());
  ASSERT_TRUE(f.server->CompactLog().ok());
  EXPECT_TRUE(f.server->Get(f.uid, "victim").status().IsNotFound());
}

}  // namespace
}  // namespace logbase::tablet
